"""Tests for FastDTW: approximation quality and structural properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.dtw import dtw
from repro.baselines.fastdtw import coarsen, expand_window, fastdtw
from repro.exceptions import ParameterError

series = arrays(
    np.float64,
    st.integers(min_value=2, max_value=48),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
)


class TestCoarsen:
    def test_even_length(self):
        out = coarsen(np.array([0.0, 2.0, 4.0, 6.0]))
        assert np.array_equal(out, [1.0, 5.0])

    def test_odd_length_keeps_tail(self):
        out = coarsen(np.array([0.0, 2.0, 9.0]))
        assert np.array_equal(out, [1.0, 9.0])

    def test_multidim(self):
        out = coarsen(np.array([[0.0, 0.0], [2.0, 4.0]]))
        assert np.array_equal(out, [[1.0, 2.0]])


class TestExpandWindow:
    def test_covers_projected_blocks(self):
        window = expand_window([(0, 0), (1, 1)], 4, 4, radius=0)
        for cell in [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 3)]:
            assert cell in window

    def test_radius_grows_window(self):
        small = expand_window([(0, 0)], 6, 6, radius=0)
        big = expand_window([(0, 0)], 6, 6, radius=2)
        assert small < big

    def test_endpoints_always_present(self):
        window = expand_window([(0, 0)], 10, 10, radius=0)
        assert (0, 0) in window
        assert (9, 9) in window


class TestFastDTW:
    def test_identical_series_zero(self):
        a = np.sin(np.linspace(0, 5, 64))
        distance, _ = fastdtw(a, a, radius=0)
        assert distance == pytest.approx(0.0, abs=1e-12)

    def test_small_series_exact(self):
        """Below the base-case size FastDTW equals exact DTW."""
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=3), rng.normal(size=3)
        assert fastdtw(a, b)[0] == pytest.approx(dtw(a, b), abs=1e-9)

    def test_rejects_negative_radius(self):
        with pytest.raises(ParameterError):
            fastdtw(np.zeros(4), np.zeros(4), radius=-1)

    @given(series, series)
    @settings(max_examples=25)
    def test_never_underestimates_exact_dtw(self, a, b):
        approx, _ = fastdtw(a, b, radius=0)
        exact = dtw(a, b)
        assert approx >= exact - 1e-9

    @given(series, series)
    @settings(max_examples=25)
    def test_path_valid(self, a, b):
        _, path = fastdtw(a, b, radius=1)
        assert path[0] == (0, 0)
        assert path[-1] == (len(a) - 1, len(b) - 1)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert (i2 - i1, j2 - j1) in {(1, 0), (0, 1), (1, 1)}

    def test_radius_improves_accuracy(self):
        """On a hard instance, a larger radius cannot do worse."""
        rng = np.random.default_rng(3)
        a = rng.normal(size=128)
        b = rng.normal(size=128)
        exact = dtw(a, b)
        gaps = []
        for radius in (0, 2, 8):
            approx, _ = fastdtw(a, b, radius=radius)
            gaps.append(approx - exact)
        assert gaps[-1] <= gaps[0] + 1e-9

    def test_reasonable_approximation_on_smooth_data(self):
        t = np.linspace(0, 6, 200)
        a, b = np.sin(t), np.sin(t + 0.2)
        exact = dtw(a, b)
        approx, _ = fastdtw(a, b, radius=1)
        assert approx <= max(2.0 * exact, exact + 1.0)
