"""Longest Common Subsequence similarity for time series (Vlachos et al.).

Two points match when their values differ by at most ``epsilon`` and
their positions by at most ``delta`` (the warping window); LCSS is the
longest chain of matches that is strictly increasing in both position
sequences.  Similarity is normalized by ``min(n, m)`` and the distance
is ``1 − similarity``, per the trajectory-indexing convention the paper
follows ("the warping length used for LCSS is 10% of the time series
length and the ε is 0.5").

Like the DTW module, the dynamic program runs on anti-diagonals so each
step is one vectorized numpy expression.  An exact accelerated
evaluation in the spirit of FTSE lives in :mod:`repro.baselines.ftse`;
the test suite checks the two agree everywhere.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["lcss_length", "lcss_similarity", "lcss_distance"]


def lcss_length(
    a: np.ndarray,
    b: np.ndarray,
    epsilon: float,
    delta: int | None = None,
) -> int:
    """Length of the longest common subsequence under (ε, δ) matching.

    ``delta=None`` places no positional constraint.  Runs the classic
    O(n·m) recurrence diagonal-by-diagonal:

        L[i, j] = max(L[i-1, j], L[i, j-1], L[i-1, j-1] + match(i, j))

    which equals the textbook conditional form because a match's
    diagonal extension always dominates the other two options.
    """
    if epsilon < 0:
        raise ParameterError(f"epsilon must be >= 0, got {epsilon}")
    if delta is not None and delta < 0:
        raise ParameterError(f"delta must be >= 0, got {delta}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return 0

    # prev1[i] = L value of cell (i, d-1-i); prev2[i] = (i, d-2-i);
    # cells are 1-based prefix lengths, boundary value 0.
    prev1 = np.zeros(n + 1, dtype=np.int64)
    prev2 = np.zeros(n + 1, dtype=np.int64)
    indices = np.arange(n + 1)
    for d in range(2, n + m + 1):
        i_lo = max(1, d - m)
        i_hi = min(n, d - 1)
        if i_lo > i_hi:
            prev2, prev1 = prev1, np.zeros(n + 1, dtype=np.int64)
            continue
        ivals = indices[i_lo : i_hi + 1]
        jvals = d - ivals
        if a.ndim == 1:
            close = np.abs(a[ivals - 1] - b[jvals - 1]) <= epsilon
        else:
            close = np.all(np.abs(a[ivals - 1] - b[jvals - 1]) <= epsilon, axis=1)
        if delta is not None:
            close &= np.abs(ivals - jvals) <= delta
        match = close.astype(np.int64)

        cur = np.zeros(n + 1, dtype=np.int64)
        left = prev1[ivals]         # cell (i, j-1)
        up = prev1[ivals - 1]       # cell (i-1, j)
        diag = prev2[ivals - 1]     # cell (i-1, j-1)
        cur[ivals] = np.maximum(np.maximum(left, up), diag + match)
        prev2, prev1 = prev1, cur
    return int(prev1[n])


def lcss_similarity(
    a: np.ndarray, b: np.ndarray, epsilon: float, delta: int | None = None
) -> float:
    """``LCSS(a, b) / min(|a|, |b|)`` ∈ [0, 1]."""
    n, m = len(a), len(b)
    if min(n, m) == 0:
        return 0.0
    return lcss_length(a, b, epsilon, delta) / min(n, m)


def lcss_distance(
    a: np.ndarray, b: np.ndarray, epsilon: float, delta: int | None = None
) -> float:
    """``1 − lcss_similarity``; smaller means more similar."""
    return 1.0 - lcss_similarity(a, b, epsilon, delta)
