"""User-facing STS3 database: a facade over segments, catalog, planner.

:class:`STS3Database` wires the paper's system together out of three
layers (DESIGN.md §10):

- the **storage layer** (:mod:`repro.core.segment`) of immutable
  segments, each with its own grid, set representations, and searchers;
- the **index-lifecycle layer** (:mod:`repro.core.catalog`), which
  tracks live segments and generation numbers and performs
  seal/extend/compact transitions;
- the **query planner/executor** (:mod:`repro.core.planner`), which
  picks a method per segment and merges per-segment top-k answers
  deterministically.

The paper's semantics are unchanged: k-NN queries with any STS3
variant (``method=`` "naive", "index", "pruning", "approximate",
"minhash", or "auto"), out-of-bound query points via Algorithm 6, and
the lazy
buffered-update strategy of Section 5.3.2 — except that a full buffer
is now *sealed* as a new segment in O(buffer) work instead of
triggering an O(database) rebuild.  :meth:`compact` performs the
deferred merge on demand.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import replace as _dc_replace

import numpy as np

from ..data.normalize import z_normalize
from ..exceptions import EmptyDatabaseError, FollowerWriteError, ParameterError
from ..faults import fault_point
from ..obs import get_registry, span
from ..types import as_series
from .approximate import ApproximateSearcher
from .batch import BatchQueryEngine, QueryWorkspace
from .cache import QueryResultCache
from .catalog import SegmentCatalog
from .grid import Bound, Grid
from .indexed import IndexedSearcher
from .naive import NaiveSearcher
from .planner import QueryPlanner
from .pruning import PruningSearcher
from .result import QueryResult
from .segment import count_transforms
from .setrep import transform, transform_query
from .wal import encode_series  # noqa: F401  (re-exported for replay tooling)

__all__ = ["STS3Database", "UpdateBuffer"]

logger = logging.getLogger(__name__)

_METHODS = ("naive", "index", "pruning", "approximate", "minhash", "auto")

#: per-worker-process batch context, installed by the Pool initializer.
#: The worker function must live at module level (Pool pickles it by
#: name); the payload arrives via ``initargs``, which ``fork`` passes
#: in-memory and ``spawn`` pickles exactly once per worker — so the
#: handoff is explicit and start-method agnostic, instead of relying on
#: fork-inherited module globals.
_WORKER_CONTEXT: dict = {}


def _init_batch_worker(db: "STS3Database", queries: list, params: dict) -> None:
    _WORKER_CONTEXT["db"] = db
    _WORKER_CONTEXT["queries"] = queries
    _WORKER_CONTEXT["params"] = params


def _batch_worker(indices: list[int]) -> list["QueryResult"]:
    db = _WORKER_CONTEXT["db"]
    queries = _WORKER_CONTEXT["queries"]
    params = _WORKER_CONTEXT["params"]
    return db._batch_chunk([queries[i] for i in indices], **params)


class UpdateBuffer:
    """Holding area for out-of-bound inserted series (Section 5.3.2).

    The buffer keeps its own bound, which grows to cover each added
    series and is always at least the database bound; set
    representations of buffered series are recomputed whenever the
    bound grows (the buffer is small, so this is cheap).  When the
    buffer fills, :meth:`seal_parts` hands its series, sets, *and grid*
    over to the catalog, which adopts them verbatim as a new segment —
    the already-paid transform work is what makes a flush O(buffer).
    """

    def __init__(self, capacity: int, db_bound: Bound, col_width: float, row_heights: tuple[float, ...]):
        if capacity < 1:
            raise ParameterError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.col_width = col_width
        self.row_heights = row_heights
        self.bound = db_bound
        self.grid = Grid(db_bound, col_width, row_heights)
        self.series: list[np.ndarray] = []
        self.sets: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self.series)

    @property
    def full(self) -> bool:
        return len(self.series) >= self.capacity

    def add(self, series: np.ndarray) -> None:
        """Add an out-TS, growing the buffer bound if needed."""
        own = Bound.of_series(series)
        if not self.bound.covers(own):
            self.bound = self.bound.union(own)
            self.grid = Grid(self.bound, self.col_width, self.row_heights)
            self.sets = [transform(s, self.grid) for s in self.series]
            count_transforms(len(self.series), "buffer")
        self.series.append(series)
        self.sets.append(transform(series, self.grid))
        count_transforms(1, "buffer")

    def drain(self) -> list[np.ndarray]:
        """Remove and return all buffered series."""
        out = self.series
        self.series = []
        self.sets = []
        return out

    def seal_parts(self) -> tuple[list[np.ndarray], Grid, list[np.ndarray]]:
        """Empty the buffer, returning ``(series, grid, sets)`` for sealing."""
        series, sets, grid = self.series, self.sets, self.grid
        self.series = []
        self.sets = []
        return series, grid, sets


class STS3Database:
    """Set-based time-series similarity search database.

    Parameters follow DESIGN.md §2: ``sigma`` is the time-axis cell
    width in samples, ``epsilon`` the value-axis cell height.  For
    multi-dimensional series ``epsilon`` may be a sequence with one
    height per value axis (Section 5.1's per-axis ``α_x, α_y``
    variant).  With ``normalize=True`` (default) every series —
    database, inserts, and queries — is z-normalized on the way in,
    matching the paper's standing assumption.

    Storage is segmented: :attr:`catalog` holds the live segments and
    :attr:`planner` answers queries across them.  On a fresh database
    there is exactly one segment, and :attr:`series`, :attr:`sets`, and
    :attr:`grid` expose its live state just as the monolithic
    implementation did.
    """

    def __init__(
        self,
        series: list[np.ndarray],
        sigma: float,
        epsilon: float | tuple[float, ...],
        normalize: bool = True,
        value_padding: float = 0.0,
        buffer_capacity: int = 32,
        default_scale: int = 6,
        default_max_scale: int = 4,
        max_workers: int | None = None,
        cache_bytes: int = 0,
        maintenance=None,
    ):
        if not series:
            raise EmptyDatabaseError("cannot build a database from no series")
        self.normalize = normalize
        self.sigma = float(sigma)
        self.epsilon = (
            tuple(float(e) for e in epsilon)
            if isinstance(epsilon, (tuple, list))
            else float(epsilon)
        )
        self.value_padding = float(value_padding)
        self.default_scale = int(default_scale)
        self.default_max_scale = int(default_max_scale)
        self.catalog = SegmentCatalog(
            self.sigma, self.epsilon, value_padding=self.value_padding
        )
        self.catalog.bootstrap([self._prepare(s) for s in series])
        self.planner = QueryPlanner(
            self.catalog,
            default_scale=self.default_scale,
            default_max_scale=self.default_max_scale,
            max_workers=max_workers,
        )
        self._workspace = QueryWorkspace()
        self.buffer = UpdateBuffer(
            buffer_capacity, self.grid.bound, self.grid.col_width, self.grid.row_heights
        )
        #: LRU over complete query answers (DESIGN.md §13), or None
        #: when disabled (``cache_bytes=0``, the default).
        self.result_cache = (
            QueryResultCache(cache_bytes) if cache_bytes > 0 else None
        )
        #: number of buffer flushes (historical name: before the
        #: segmented engine each flush was a full rebuild; now each is
        #: an O(buffer) seal, and Appendix A's ~1/capacity scaling
        #: still holds).
        self.rebuild_count = 0
        #: optional write-ahead log (attach_wal) + the last WAL seq the
        #: source archive covered (0 for a fresh database).
        self.wal = None
        self.wal_seq = 0
        self._replaying = False
        self._follower = False
        # Serializes every structural mutation (insert/flush/compact/
        # merge/checkpoint) against the background maintenance engine;
        # readers never take it — they pin catalog snapshots instead.
        self._mutation_lock = threading.RLock()
        self._maintenance = None
        if maintenance is not None:
            self.enable_maintenance(maintenance)

    @property
    def max_workers(self) -> int | None:
        """Thread-parallelism knob, delegated to the planner (live)."""
        return self.planner.max_workers

    @max_workers.setter
    def max_workers(self, value: int | None) -> None:
        self.planner.max_workers = value

    # -- construction helpers -------------------------------------------

    def _prepare(self, series: np.ndarray) -> np.ndarray:
        # as_series validates shape and rejects NaN/inf at the boundary,
        # where the error message can still name the offending input.
        arr = as_series(series)
        return z_normalize(arr) if self.normalize else arr

    @classmethod
    def _assembly_shell(
        cls,
        sigma: float,
        epsilon: float | tuple[float, ...],
        normalize: bool,
        value_padding: float,
        default_scale: int,
        default_max_scale: int,
    ) -> "STS3Database":
        """A database shell with an *empty* catalog, awaiting segments.

        Persistence adopts segments into ``shell.catalog`` (eagerly or
        lazily) and then calls :meth:`_finish_assembly`; splitting the
        two lets the mmap loader register payload loaders without ever
        materializing a series.
        """
        self = cls.__new__(cls)
        self.normalize = normalize
        self.sigma = float(sigma)
        self.epsilon = (
            tuple(float(e) for e in epsilon)
            if isinstance(epsilon, (tuple, list))
            else float(epsilon)
        )
        self.value_padding = float(value_padding)
        self.default_scale = int(default_scale)
        self.default_max_scale = int(default_max_scale)
        self.catalog = SegmentCatalog(
            self.sigma, self.epsilon, value_padding=self.value_padding
        )
        return self

    def _finish_assembly(
        self,
        buffer_capacity: int,
        max_workers: int | None = None,
        cache_bytes: int = 0,
    ) -> None:
        """Wire planner/buffer/caches once the catalog holds segments.

        Touches only segment *grids* (covering bound, buffer anchor),
        never series or sets, so lazy segments stay mapped.
        """
        self.planner = QueryPlanner(
            self.catalog,
            default_scale=self.default_scale,
            default_max_scale=self.default_max_scale,
            max_workers=max_workers,
        )
        self._workspace = QueryWorkspace()
        last = self.catalog.segments[-1].grid
        self.buffer = UpdateBuffer(
            buffer_capacity, self.catalog.covering_bound(),
            last.col_width, last.row_heights,
        )
        self.result_cache = (
            QueryResultCache(cache_bytes) if cache_bytes > 0 else None
        )
        self.rebuild_count = 0
        self.wal = None
        self.wal_seq = 0
        self._replaying = False
        self._follower = False
        self._mutation_lock = threading.RLock()
        self._maintenance = None

    # -- pickling (process-based query_batch workers) --------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # Locks and background threads are process-local; workers only
        # ever answer queries, so they get a fresh lock and no engine.
        state.pop("_mutation_lock", None)
        state.pop("_maintenance", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_follower", False)
        self._mutation_lock = threading.RLock()
        self._maintenance = None

    @classmethod
    def from_segments(
        cls,
        payloads: list[tuple[list[np.ndarray], Grid]],
        sigma: float,
        epsilon: float | tuple[float, ...],
        normalize: bool,
        value_padding: float,
        buffer_capacity: int,
        default_scale: int,
        default_max_scale: int,
        max_workers: int | None = None,
        cache_bytes: int = 0,
    ) -> "STS3Database":
        """Reassemble a database from per-segment ``(series, grid)`` pairs.

        Persistence uses this to restore a segmented catalog exactly:
        each archived grid is adopted verbatim (series are assumed
        already prepared), so similarities — which depend on each
        segment's grid — survive a round-trip bit-for-bit.
        """
        if not payloads:
            raise EmptyDatabaseError("cannot restore a database from no segments")
        self = cls._assembly_shell(
            sigma, epsilon, normalize, value_padding,
            default_scale, default_max_scale,
        )
        for series, grid in payloads:
            self.catalog.adopt(series, grid)
        self._finish_assembly(
            buffer_capacity, max_workers=max_workers, cache_bytes=cache_bytes
        )
        return self

    # -- durability -------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Journal every mutation to ``wal`` before applying it.

        With a WAL attached, :meth:`insert`, :meth:`flush`, and
        :meth:`compact` append a record (durable at the log's fsync
        cadence) *before* touching the buffer or catalog, so a crash
        loses at most the unsynced tail — never an acknowledged write.
        Recovery is :func:`repro.core.persistence.recover_database`.
        """
        self.wal = wal

    # -- replication follower mode (docs/replication.md) -------------------

    @property
    def follower(self) -> bool:
        """True while this database is a replication follower."""
        return self._follower

    def set_follower(self, follower: bool = True) -> None:
        """Enter (or, on promotion, leave) follower apply mode.

        A follower's only legal mutations arrive as shipped WAL records
        applied through
        :func:`repro.core.persistence.apply_wal_records` — local
        ``insert``/``flush``/``compact``/``merge_run``/``checkpoint``
        calls raise :class:`~repro.exceptions.FollowerWriteError`, so a
        misrouted write can never fork the follower's history from the
        primary's.  Promotion flips the flag off and re-attaches a live
        WAL (:meth:`attach_wal`), after which the database journals and
        serves writes exactly like any primary.
        """
        self._follower = bool(follower)

    def _require_writable(self, op: str) -> None:
        if self._follower and not self._replaying:
            raise FollowerWriteError(
                f"{op} rejected: this database is a replication follower "
                "(writes arrive only via shipped WAL records; promote first)"
            )

    def close(self) -> None:
        """Stop maintenance, sync and release the WAL (safe to call twice)."""
        self.stop_maintenance()
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    # -- background maintenance (DESIGN.md §15) ---------------------------

    @property
    def maintenance(self):
        """The attached :class:`~repro.core.maintenance.MaintenanceEngine`, or None."""
        return self._maintenance

    def enable_maintenance(self, config=None, start: bool | None = None):
        """Attach (and optionally start) a background maintenance engine.

        ``config`` is a :class:`~repro.core.maintenance.MaintenanceConfig`
        (default-constructed when None).  ``start=None`` honours
        ``config.auto_start``; pass ``start=False`` to attach an engine
        that only runs when :meth:`MaintenanceEngine.run_pending` /
        ``run_until_idle`` are called explicitly (deterministic tests,
        offline ``sts3 maintain``).  Replaces any previous engine.
        """
        from .maintenance import MaintenanceConfig, MaintenanceEngine

        if config is None:
            config = MaintenanceConfig()
        self.stop_maintenance()
        self._maintenance = MaintenanceEngine(self, config)
        if config.auto_start if start is None else start:
            self._maintenance.start()
        return self._maintenance

    def stop_maintenance(self) -> None:
        """Stop and detach the maintenance engine (no-op without one)."""
        if self._maintenance is not None:
            self._maintenance.stop()
            self._maintenance = None

    def maintenance_status(self) -> dict:
        """Maintenance health for ``/healthz`` and ``sts3 inspect``.

        Always answerable — without an engine the trigger/budget fields
        are None but the observed values (live segments, WAL lag, bytes
        resident) still report, so operators can see a database falling
        behind before deciding to attach maintenance.
        """
        snapshot = self.catalog.current()
        status = {
            "live_segments": len(snapshot.segments),
            "max_segments": None,
            "wal_lag": (
                self.wal.records_since_checkpoint if self.wal is not None else 0
            ),
            "checkpoint_every": None,
            "resident_bytes": sum(
                seg.resident_bytes() for seg in snapshot.segments
            ),
            "memory_budget_bytes": None,
            "pinned_snapshots": self.catalog.pinned_snapshots(),
            "engine": None,
        }
        if self._maintenance is not None:
            status.update(self._maintenance.status())
        return status

    def checkpoint(self, path, **kwargs) -> None:
        """Persist to ``path`` atomically (archives + retires WAL files).

        A mutation-locked wrapper over
        :func:`repro.core.persistence.save_database`, so the archive
        never captures a half-applied insert or merge; the maintenance
        engine's checkpoint cadence and operators share this entry.
        """
        from .persistence import save_database

        with self._mutation_lock:
            self._require_writable("checkpoint")
            save_database(self, path, **kwargs)

    def _wal_append(self, op: str, **fields) -> None:
        # During recovery the records being applied are already on
        # disk; re-journaling them would double history on every crash.
        if self.wal is not None and not self._replaying:
            self.wal.append(op, **fields)

    # -- storage views ---------------------------------------------------

    @property
    def series(self) -> list[np.ndarray]:
        """All stored series in global-index order (excludes the buffer).

        On a single-segment catalog this is the segment's *live* list;
        with multiple segments it is a fresh concatenation.
        """
        segments = self.catalog.segments
        if len(segments) == 1:
            return segments[0].series
        return [s for seg in segments for s in seg.series]

    @property
    def sets(self) -> list[np.ndarray]:
        """All set representations in global-index order.

        Sets from different segments are *not* comparable — each is
        digitized under its own segment grid.  Same single-segment
        liveness rule as :attr:`series`.
        """
        segments = self.catalog.segments
        if len(segments) == 1:
            return segments[0].sets
        return [s for seg in segments for s in seg.sets]

    @sets.setter
    def sets(self, value: list[np.ndarray]) -> None:
        segments = self.catalog.segments
        if len(segments) != 1:
            raise ParameterError(
                "sets can only be replaced wholesale on a single-segment "
                "database; use the catalog for segmented stores"
            )
        segments[0].sets = list(value)

    @property
    def grid(self) -> Grid:
        """The base segment's grid (queries' reference frame for ties)."""
        return self.catalog.segments[0].grid

    def __len__(self) -> int:
        return self.catalog.n_series + len(self.buffer)

    # -- searcher access -------------------------------------------------

    def naive_searcher(self) -> NaiveSearcher:
        """The base segment's cached linear-scan searcher."""
        return self.catalog.segments[0].naive_searcher()

    def indexed_searcher(self) -> IndexedSearcher:
        """The base segment's cached inverted-index searcher."""
        return self.catalog.segments[0].indexed_searcher()

    def pruning_searcher(self, scale: int | None = None) -> PruningSearcher:
        """The base segment's cached zone-pruning searcher."""
        scale = self.default_scale if scale is None else int(scale)
        return self.catalog.segments[0].pruning_searcher(scale)

    def batch_engine(self) -> BatchQueryEngine:
        """The base segment's vectorized batch kernel."""
        return self.catalog.segments[0].batch_engine(self._workspace)

    def approximate_searcher(self, max_scale: int | None = None) -> ApproximateSearcher:
        """The base segment's cached multi-scale approximate searcher."""
        max_scale = self.default_max_scale if max_scale is None else int(max_scale)
        return self.catalog.segments[0].approximate_searcher(max_scale)

    def minhash_searcher(self, num_perm: int = 128, bands: int = 32):
        """The base segment's cached MinHash/LSH searcher."""
        return self.catalog.segments[0].minhash_searcher(num_perm, bands)

    def _auto_method(self) -> str:
        return self.planner.resolve_auto()

    @property
    def _calibrated_method(self) -> str | None:
        return self.planner.calibrated_method

    def calibrate(self, sample_queries: list[np.ndarray], k: int = 1) -> dict[str, float]:
        """Measure the exact variants on sample queries; fix ``auto``.

        Runs the naive, index, and pruning searchers over the sample
        and pins ``method="auto"`` to the measured fastest (the
        approximate variant is excluded — auto-dispatch must never
        silently trade exactness).  Returns the per-variant seconds for
        inspection; call again with new samples to re-calibrate.
        """
        import time

        if not sample_queries:
            raise ParameterError("calibration needs at least one sample query")
        timings: dict[str, float] = {}
        for method in ("naive", "index", "pruning"):
            start = time.perf_counter()
            for query in sample_queries:
                self.query(query, k=k, method=method)
            timings[method] = time.perf_counter() - start
        self.planner.calibrated_method = min(timings, key=timings.get)
        return timings

    # -- queries -----------------------------------------------------------

    def transform_query(self, series: np.ndarray) -> np.ndarray:
        """Set representation of a (possibly out-of-bound) query.

        Computed under the *base* segment's grid; per-segment query
        sets used during execution are built by the planner.
        """
        return transform_query(self._prepare(series), self.grid)

    def query(
        self,
        series: np.ndarray,
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        deadline_ms: float | None = None,
        deadline_start: float | None = None,
    ) -> QueryResult:
        """k-NN query under the Jaccard similarity of set representations.

        Returns neighbours ordered best-first; ``Neighbor.index``
        refers to global :attr:`series` positions, with buffered series
        indexed after the stored segments (their positions are stable
        across the eventual flush).

        ``deadline_ms`` opts into graceful degradation (DESIGN.md §12):
        past half the budget remaining segments downgrade exact methods
        to approximate, past the budget they are skipped — the result
        then reports ``complete=False`` with a ``degraded_reason``
        instead of blowing the latency budget or raising.
        ``deadline_start`` (a ``planner.clock`` reading) backdates the
        budget to a request's arrival time so queue wait counts too —
        the serving layer's hook (docs/serving.md); ignored without
        ``deadline_ms``.
        """
        if method not in _METHODS:
            raise ParameterError(f"unknown method {method!r}; one of {_METHODS}")
        if method == "auto":
            method = self._auto_method()
        with span("query", method=method, k=k):
            prepared = self._prepare(series)
            cache = self.result_cache
            # Deadline-bounded answers depend on the wall clock and are
            # never cached (nor served from the cache: a cached complete
            # answer is *better* than a degraded one, but replaying it
            # would make deadline behaviour untestable).
            if cache is not None and deadline_ms is None:
                key = self._result_cache_key(prepared, k, method, scale, max_scale)
                cached = cache.get(key)
                if cached is not None:
                    result = self._clone_result(cached)
                else:
                    result = self.planner.execute(
                        prepared, k, method, scale=scale, max_scale=max_scale,
                        buffer=self.buffer, deadline_ms=None,
                    )
                    self._cache_store(key, result)
            else:
                result = self.planner.execute(
                    prepared, k, method, scale=scale, max_scale=max_scale,
                    buffer=self.buffer, deadline_ms=deadline_ms,
                    deadline_start=deadline_start,
                )
        get_registry().counter(
            "sts3_queries_total", "k-NN queries answered, by search variant"
        ).inc(method=method)
        return result

    # -- result-cache plumbing (DESIGN.md §13) ---------------------------

    def _result_cache_key(
        self,
        prepared: np.ndarray,
        k: int,
        method: str,
        scale: int | None,
        max_scale: int | None,
    ) -> tuple:
        """Cache key over everything a complete answer depends on.

        The catalog generation component is the invalidation wire:
        insert/flush/compact all bump it, so entries for the old state
        simply stop being addressable.  ``scale``/``max_scale`` are
        resolved to their defaults first, so explicit-default and
        implicit calls share entries.
        """
        resolved_scale = self.default_scale if scale is None else int(scale)
        resolved_max = (
            self.default_max_scale if max_scale is None else int(max_scale)
        )
        payload = repr(prepared.shape).encode() + np.ascontiguousarray(
            prepared
        ).tobytes()
        return QueryResultCache.key(
            payload, k, method, resolved_scale, resolved_max,
            self.epsilon, self.catalog.generation,
        )

    @staticmethod
    def _clone_result(result: QueryResult) -> QueryResult:
        """A detached copy: callers may mutate results; the cache keeps its own."""
        return QueryResult(
            neighbors=list(result.neighbors),
            stats=_dc_replace(result.stats),
            complete=result.complete,
            skipped_segments=list(result.skipped_segments),
            degraded_reason=result.degraded_reason,
            skipped_shards=list(result.skipped_shards),
        )

    def _cache_store(self, key: tuple, result: QueryResult) -> None:
        """Cache a complete answer (degraded ones must never replay)."""
        if result.complete:
            nbytes = 120 * len(result.neighbors) + 512  # neighbors + stats + key
            self.result_cache.put(key, self._clone_result(result), nbytes)

    def query_batch(
        self,
        queries: list[np.ndarray],
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        workers: int | None = None,
        start_method: str | None = None,
        deadline_ms: float | None = None,
        deadline_start: float | None = None,
    ) -> list[QueryResult]:
        """Answer many queries, optionally across worker processes.

        ``deadline_ms`` is a *per-query* budget (see :meth:`query`); it
        routes the batch through the scalar loop, since the vectorized
        kernel commits to a whole segment at once and cannot downgrade
        mid-pass.  ``deadline_start`` backdates every budget to one
        shared arrival stamp (the serving layer's batch hook).

        The paper's conclusion names "adopting a parallelized
        mechanism" as future work.  Two mechanisms compose here:

        - With ``method="index"`` the whole batch (or each worker's
          share of it) runs through the planner's vectorized per-segment
          execution — one CSR pass over each index-planned segment's
          inverted index instead of a Python-level loop — which returns
          results identical to per-query :meth:`query` calls.  Other
          methods fall back to the scalar loop.
        - Queries are embarrassingly parallel, but CPython threads do
          not help here (the hot loops hold the GIL), so parallel
          batches spin up worker processes.  Each worker takes a
          *strided* slice of the queries (``queries[i::workers]``)
          rather than a contiguous block: query costs are heterogeneous
          (they scale with postings touched), and striding deals
          similar mixes of cheap and expensive queries to every worker,
          which balances load where contiguous blocks would let one
          worker straggle.

        Workers receive the database and their queries as an explicit
        ``Pool(initializer=...)`` context, so both ``fork`` (payload
        inherited copy-on-write) and ``spawn`` (payload pickled once
        per worker) start methods behave identically.
        ``start_method=None`` prefers ``fork`` where available;
        ``workers=None`` or 1 runs sequentially.
        """
        if method not in _METHODS:
            raise ParameterError(f"unknown method {method!r}; one of {_METHODS}")
        if method == "auto":
            method = self._auto_method()
        get_registry().counter(
            "sts3_batch_queries_total", "queries answered through query_batch"
        ).inc(len(queries), method=method)
        with span("query_batch", method=method, queries=len(queries)):
            return self._query_batch(
                queries, k=k, method=method, scale=scale,
                max_scale=max_scale, workers=workers, start_method=start_method,
                deadline_ms=deadline_ms, deadline_start=deadline_start,
            )

    def _query_batch(
        self,
        queries: list[np.ndarray],
        k: int,
        method: str,
        scale: int | None,
        max_scale: int | None,
        workers: int | None,
        start_method: str | None = None,
        deadline_ms: float | None = None,
        deadline_start: float | None = None,
    ) -> list[QueryResult]:
        # Build the base segment's searcher before fanning out, so
        # workers inherit (or receive) ready structures instead of each
        # rebuilding them.  (A no-op span when already cached.)
        with span("build_index", method=method):
            if method == "index":
                self.indexed_searcher()
            elif method == "pruning":
                self.pruning_searcher(scale)
            elif method == "approximate":
                self.approximate_searcher(max_scale)
            elif method == "minhash":
                self.minhash_searcher()

        if not workers or workers <= 1 or len(queries) < 2:
            return self._batch_chunk(
                list(queries), k=k, method=method, scale=scale,
                max_scale=max_scale, deadline_ms=deadline_ms,
                deadline_start=deadline_start,
            )
        import multiprocessing as mp

        available = mp.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else mp.get_start_method()
        elif start_method not in available:
            raise ParameterError(
                f"start_method {start_method!r} not available; one of {available}"
            )
        context = mp.get_context(start_method)
        workers = min(workers, len(queries))
        chunks = [list(range(i, len(queries), workers)) for i in range(workers)]
        params = dict(
            k=k, method=method, scale=scale, max_scale=max_scale,
            deadline_ms=deadline_ms, deadline_start=deadline_start,
        )
        # Under fork, workers inherit the active tracer copy-on-write:
        # spans they record die with the worker process, while the
        # parent's open query_batch span closes normally
        # (docs/observability.md).  Under spawn, workers start with the
        # default no-op tracer.
        with context.Pool(
            processes=workers,
            initializer=_init_batch_worker,
            initargs=(self, list(queries), params),
        ) as pool:
            chunk_results = pool.map(_batch_worker, chunks)
        # Re-interleave: chunk i holds queries i, i+workers, i+2w, ...
        out: list[QueryResult] = [None] * len(queries)  # type: ignore[list-item]
        for i, results in enumerate(chunk_results):
            out[i::workers] = results
        return out

    def _batch_chunk(
        self,
        queries: list[np.ndarray],
        k: int = 1,
        method: str = "index",
        scale: int | None = None,
        max_scale: int | None = None,
        deadline_ms: float | None = None,
        deadline_start: float | None = None,
    ) -> list[QueryResult]:
        """Answer a chunk of queries in-process (``method`` resolved).

        The ``method="index"`` path runs the planner's vectorized batch
        execution; every other method — and any deadline-bounded batch —
        loops the scalar :meth:`query`.  Buffered series are merged per
        query either way, so results always match scalar calls exactly.
        """
        if method != "index" or deadline_ms is not None:
            return [
                self.query(
                    q, k=k, method=method, scale=scale, max_scale=max_scale,
                    deadline_ms=deadline_ms, deadline_start=deadline_start,
                )
                for q in queries
            ]
        prepared = [self._prepare(q) for q in queries]
        cache = self.result_cache
        if cache is None:
            return self.planner.execute_batch(
                prepared, k, method, scale=scale, max_scale=max_scale,
                buffer=self.buffer, workspace=self._workspace,
            )
        # Per-query cache keys are identical to the scalar path's, so a
        # batch can hit entries that scalar queries populated (and vice
        # versa); only the misses run through the vectorized kernel.
        keys = [
            self._result_cache_key(p, k, method, scale, max_scale)
            for p in prepared
        ]
        out: list[QueryResult | None] = [None] * len(queries)
        misses: list[int] = []
        for i, key in enumerate(keys):
            hit = cache.get(key)
            if hit is not None:
                out[i] = self._clone_result(hit)
            else:
                misses.append(i)
        if misses:
            miss_results = self.planner.execute_batch(
                [prepared[i] for i in misses], k, method,
                scale=scale, max_scale=max_scale,
                buffer=self.buffer, workspace=self._workspace,
            )
            for i, result in zip(misses, miss_results):
                self._cache_store(keys[i], result)
                out[i] = result
        return out  # type: ignore[return-value]

    # -- updates -----------------------------------------------------------

    def insert(self, series: np.ndarray) -> None:
        """Add a series; out-of-bound series go through the lazy buffer.

        An in-bound series extends the newest segment directly (its
        searcher caches are rebuilt lazily).  An out-TS lands in the
        buffer; when the buffer fills it is *sealed* as a new segment —
        O(buffer) work, since the buffer's grid and set representations
        are adopted as-is (Section 5.3.2's refresh, deferred further to
        :meth:`compact`).

        With a WAL attached the insert is journaled first, so a crash
        any time after the append (once synced) cannot lose it.
        """
        self._insert_prepared(self._prepare(series))

    def _insert_prepared(self, prepared: np.ndarray) -> None:
        """Insert an already-prepared series (the WAL-replay entry point).

        The WAL journals *prepared* series — z-normalization is not
        bitwise idempotent, so replaying raw inputs through
        :meth:`_prepare` again would break the bit-identical-recovery
        contract.
        """
        with self._mutation_lock:
            self._require_writable("insert")
            if self.wal is not None and not self._replaying:
                self.wal.append_series("insert", prepared)
            newest = self.catalog.segments[-1]
            if newest.grid.bound.covers(Bound.of_series(prepared)):
                self.catalog.extend_last(prepared)
                get_registry().counter(
                    "sts3_inserts_total", "series inserted, by destination"
                ).inc(path="direct")
                return
            self.buffer.add(prepared)
            # Not a structural change, but cached answers computed before
            # the buffer grew are stale — advance the generation so the
            # result cache stops serving them (satellite 4's contract).
            self.catalog.touch()
            get_registry().counter(
                "sts3_inserts_total", "series inserted, by destination"
            ).inc(path="buffered")
            logger.debug(
                "out-of-bound insert buffered (%d/%d)",
                len(self.buffer),
                self.buffer.capacity,
            )
            if self.buffer.full:
                self.flush()

    def verify_integrity(self) -> list[str]:
        """Self-check the database's internal consistency.

        Returns a list of human-readable problem descriptions (empty
        when everything is consistent).  Checks, per segment:
        series/set parallel lists, every set matches a fresh transform
        under the segment's grid, the segment bound covers every stored
        series, and cached searchers reference the live set lists; plus
        that the buffer bound covers every segment bound.  Intended for
        test harnesses and post-crash diagnostics; cost is one full
        re-transform, so don't call it per query.
        """
        problems: list[str] = []
        for offset, segment in zip(self.catalog.offsets(), self.catalog.segments):
            problems.extend(segment.verify_integrity(offset))
        if not self.buffer.bound.covers(self.catalog.covering_bound()):
            problems.append("buffer bound does not cover the database bound")
        if len(self.buffer.series) != len(self.buffer.sets):
            problems.append("buffer series/sets lists are out of sync")
        return problems

    def flush(self) -> None:
        """Seal the buffered series as a new segment (O(buffer) work)."""
        with self._mutation_lock:
            self._require_writable("flush")
            if not len(self.buffer):
                return
            self._wal_append("flush")
            series, grid, sets = self.buffer.seal_parts()
            logger.info(
                "sealing %d buffered series as segment %d (catalog generation %d)",
                len(series),
                self.catalog._next_id,
                self.catalog.generation,
            )
            with span("flush", flushed=len(series)):
                self.catalog.seal(series, grid, sets)
                # The next buffer anchors at the sealed grid's bound, which
                # covers every earlier segment by induction — preserving
                # the invariant that sealing never shrinks a bound.
                self.buffer = UpdateBuffer(
                    self.buffer.capacity, grid.bound, grid.col_width, grid.row_heights
                )
            self.rebuild_count += 1
            # Rotate at segment seal: generation boundaries then line up
            # with segment boundaries, and a checkpoint retires whole files.
            if self.wal is not None and not self._replaying:
                self.wal.rotate()

    def compact(self, min_size: int | None = None) -> int:
        """Merge segments (Section 5.3.2's deferred full "refresh").

        ``min_size=None`` merges everything into one segment with a
        fresh tight bound — bit-identical to rebuilding the database
        from scratch over the same series.  With ``min_size`` only
        consecutive runs of segments smaller than ``min_size`` merge.
        Returns the number of segments merged away.  If merging changed
        the covering bound, the update buffer is re-anchored (buffered
        series re-transform under the new buffer grid).
        """
        if min_size is not None and min_size < 1:
            # Validate before journaling — a record that cannot replay
            # would poison every future recovery.
            raise ParameterError(f"min_size must be >= 1, got {min_size}")
        with self._mutation_lock:
            self._require_writable("compact")
            self._wal_append("compact", min_size=min_size)
            merged_away = self.catalog.compact(min_size=min_size)
            if merged_away:
                self._reanchor_buffer()
        return merged_away

    def merge_run(self, start: int, stop: int):
        """Merge catalog segments ``[start, stop)`` synchronously.

        The journaled building block behind background maintenance:
        WAL replay (op ``"merge"``), offline ``sts3 maintain``, and the
        benchmarks' stop-the-world baseline all apply merges through
        here, so a replayed/offline merge sequence reproduces the
        background engine's layout (and therefore its answers) exactly.
        Returns the merged :class:`~repro.core.segment.Segment`.
        """
        with self._mutation_lock:
            self._require_writable("merge")
            if not self._replaying:
                fault_point("maintenance.merge.journal")
            self._wal_append("merge", start=int(start), stop=int(stop))
            if not self._replaying:
                fault_point("maintenance.merge.publish")
            merged = self.catalog.merge_run(int(start), int(stop))
            self._reanchor_buffer()
            if not self._replaying:
                fault_point("maintenance.merge.done")
        return merged

    def publish_merge(self, run, merged) -> bool:
        """Publish a merge the maintenance engine built off-lock.

        ``run`` is the consecutive segment tuple the engine planned
        against (from a pinned snapshot); ``merged`` the pre-built
        replacement.  If the layout moved underneath (a concurrent
        compact or a seal replaced one of the run's objects) nothing is
        published and False is returned — the engine replans.  The WAL
        record is positional and journaled before the swap, exactly as
        :meth:`merge_run` would have written it, so recovery replays
        background merges deterministically.
        """
        with self._mutation_lock:
            self._require_writable("merge")
            start = self.catalog.locate_run(run)
            if start is None:
                return False
            if not self._replaying:
                fault_point("maintenance.merge.journal")
            self._wal_append("merge", start=start, stop=start + len(run))
            if not self._replaying:
                fault_point("maintenance.merge.publish")
            self.catalog.splice_run(start, run, merged)
            self._reanchor_buffer()
            if not self._replaying:
                fault_point("maintenance.merge.done")
            return True

    def _reanchor_buffer(self) -> None:
        """Re-anchor the buffer if merging shrank the covering bound.

        Merged segments get fresh *tight* bounds, so the union can only
        shrink or stay — a buffer anchored at the old covering bound
        still covers the new one and this is normally a no-op; the
        re-anchor path survives for full compactions that rebuilt the
        base segment's padding.  Caller holds the mutation lock.
        """
        covering = self.catalog.covering_bound()
        if not self.buffer.bound.covers(covering):
            pending = self.buffer.drain()
            last = self.catalog.segments[-1].grid
            self.buffer = UpdateBuffer(
                self.buffer.capacity, covering, last.col_width, last.row_heights
            )
            for series_item in pending:
                self.buffer.add(series_item)
