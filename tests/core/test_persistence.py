"""Tests for database save/load round-trips."""

import numpy as np
import pytest

from repro import STS3Database
from repro.core.persistence import load_database, save_database
from repro.exceptions import DatasetError


@pytest.fixture
def db():
    rng = np.random.default_rng(0)
    return STS3Database(
        [rng.normal(size=48) for _ in range(20)], sigma=3, epsilon=0.4
    )


class TestRoundTrip:
    def test_basic(self, db, tmp_path):
        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert len(loaded) == len(db)
        assert loaded.sigma == db.sigma
        assert loaded.epsilon == db.epsilon
        assert loaded.verify_integrity() == []

    def test_queries_identical(self, db, tmp_path):
        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        rng = np.random.default_rng(1)
        for _ in range(3):
            query = rng.normal(size=48)
            a = db.query(query, k=4, method="index")
            b = loaded.query(query, k=4, method="index")
            assert a.indices() == b.indices()
            assert a.similarities() == b.similarities()

    def test_buffer_survives(self, tmp_path):
        rng = np.random.default_rng(2)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(8)],
            sigma=2,
            epsilon=0.5,
            normalize=False,
            buffer_capacity=5,
        )
        spike = np.zeros(32)
        spike[4] = 99.0
        db.insert(spike)
        provisional = db.query(spike, k=1, method="naive").best.index

        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert len(loaded.buffer) == 1
        assert loaded.query(spike, k=1, method="naive").best.index == provisional

    def test_multidim(self, tmp_path):
        rng = np.random.default_rng(3)
        db = STS3Database(
            [rng.normal(size=(24, 2)) for _ in range(6)], sigma=2, epsilon=(0.4, 0.8)
        )
        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.epsilon == (0.4, 0.8)
        assert loaded.series[0].shape == (24, 2)
        query = db.series[2]
        assert loaded.query(query, k=1, method="naive").best.similarity == 1.0

    def test_unequal_lengths(self, tmp_path):
        rng = np.random.default_rng(4)
        db = STS3Database(
            [rng.normal(size=n) for n in (16, 24, 32)], sigma=2, epsilon=0.5
        )
        path = tmp_path / "db.npz"
        save_database(db, path)
        loaded = load_database(path)
        assert [len(s) for s in loaded.series] == [16, 24, 32]

    def test_rebuild_count_preserved(self, tmp_path):
        rng = np.random.default_rng(5)
        db = STS3Database(
            [rng.normal(size=16) for _ in range(4)],
            sigma=2, epsilon=0.5, normalize=False, buffer_capacity=1,
        )
        spike = np.zeros(16)
        spike[0] = 50.0
        db.insert(spike)  # buffer fills → rebuild
        assert db.rebuild_count == 1
        path = tmp_path / "db.npz"
        save_database(db, path)
        assert load_database(path).rebuild_count == 1


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_database(tmp_path / "nope.npz")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises((DatasetError, KeyError)):
            load_database(path)

    def test_wrong_version(self, db, tmp_path):
        import json

        path = tmp_path / "db.npz"
        save_database(db, path, format_version=3)
        with np.load(path) as archive:
            data = dict(archive)
        header = json.loads(bytes(data["header"]).decode())
        header["format_version"] = 999
        data["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(DatasetError):
            load_database(path)


class TestFormatVersions:
    """Legacy-format compatibility (headers rewritten via np.load/savez,
    which only works on the one-npz v1-v3 layout — hence the explicit
    ``format_version=3`` saves)."""

    def _rewrite_header(self, path, mutate):
        import json

        with np.load(path) as archive:
            data = dict(archive)
        header = json.loads(bytes(data["header"]).decode())
        mutate(header)
        data["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(path, **data)

    def test_v1_archive_loads_as_single_segment(self, db, tmp_path):
        """A pre-segmentation (v1, no segment table) archive still loads.

        The legacy path reconstructs through the constructor — one
        bootstrap segment with a freshly-derived tight bound — which is
        exactly what the pre-segmented engine did on load.
        """
        path = tmp_path / "db.npz"
        save_database(db, path, format_version=3)

        def to_v1(header):
            header["format_version"] = 1
            del header["segments"]

        self._rewrite_header(path, to_v1)
        loaded = load_database(path)
        assert len(loaded.catalog.segments) == 1
        assert len(loaded) == len(db)
        assert loaded.verify_integrity() == []
        rng = np.random.default_rng(6)
        for _ in range(3):
            query = rng.normal(size=48)
            a = db.query(query, k=4, method="index")
            b = loaded.query(query, k=4, method="index")
            assert a.indices() == b.indices()
            assert a.similarities() == b.similarities()

    def test_v2_archive_restores_segment_table(self, tmp_path):
        rng = np.random.default_rng(7)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(10)],
            sigma=2, epsilon=0.5, normalize=False, buffer_capacity=2,
        )
        for i in range(2):  # fills the buffer → seals a delta segment
            spike = rng.normal(size=32)
            spike[0] = 60.0 + 10.0 * i
            db.insert(spike)
        assert len(db.catalog.segments) == 2
        path = tmp_path / "db.npz"
        save_database(db, path, format_version=3)
        loaded = load_database(path)
        assert [len(s) for s in loaded.catalog.segments] == [
            len(s) for s in db.catalog.segments
        ]
        query = rng.normal(size=32)
        for method in ("naive", "index", "pruning", "approximate"):
            a = db.query(query, k=3, method=method)
            b = loaded.query(query, k=3, method=method)
            assert a.indices() == b.indices()
            assert a.similarities() == b.similarities()

    def test_truncated_segment_table_rejected(self, tmp_path):
        rng = np.random.default_rng(8)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(6)], sigma=2, epsilon=0.5
        )
        path = tmp_path / "db.npz"
        save_database(db, path, format_version=3)

        def corrupt(header):
            header["segments"][0]["size"] = 3  # claims fewer than stored

        self._rewrite_header(path, corrupt)
        with pytest.raises(DatasetError):
            load_database(path)
