"""Command-line interface: ``sts3`` (or ``python -m repro``).

Subcommands:

- ``sts3 info`` — version and component overview.
- ``sts3 datasets`` — the synthetic stand-in registry with paper shapes.
- ``sts3 demo`` — a 30-second end-to-end demonstration on synthetic ECG.
- ``sts3 query`` — build a database from a UCR-format file (or the
  synthetic ECG stream) and answer a k-NN query, printing neighbours.
  ``--trace`` prints the span trace of the query; ``--profile`` prints
  a cProfile report (see ``docs/observability.md``).
- ``sts3 batch`` — answer many k-NN queries at once through the
  vectorized batch engine, printing throughput and aggregate search
  statistics.  ``--trace`` prints the batch's span trace;
  ``--metrics-json PATH`` writes per-stage timings plus the metric
  registry snapshot as JSON.
- ``sts3 inspect`` — open a saved database (``save_database`` archive)
  and print its segment catalog: per-segment sizes, grid shapes,
  resident bytes per set representation (sorted arrays / packed
  bitmaps / coarse levels), buffer occupancy, per-segment checksum
  status, and WAL replay lag (see DESIGN.md §10 on the segmented
  engine, §11 on the packed bitsets, §12 on durability).
- ``sts3 verify`` — offline integrity check of an archive + its WAL:
  per-payload checksum status and WAL frame health, without building
  the database.  Exit code 1 when anything fails verification.
- ``sts3 recover`` — crash recovery: load the archive (quarantining
  corrupt segments), replay the WAL tail, and write a fresh checkpoint
  archive (see docs/durability.md for the runbook).
- ``sts3 bench`` — run the kernel-speed lever phases (parallel segment
  execution, zero-copy mapped loads, the query-result cache, and the
  combined serving workload) on a synthetic workload and print a
  per-lever speedup table (``--levers`` picks phases; DESIGN.md §13).
- ``sts3 serve`` — run the asyncio query server (binary protocol +
  HTTP adapter) over a saved archive, a UCR-format file, or a
  synthetic ECG database; request coalescing, deadlines, admission
  control, graceful drain (see docs/serving.md and DESIGN.md §14).
  ``--shards N`` fronts the sharded multi-process engine instead of
  the in-process one (docs/sharding.md); a sharded archive directory
  given as ``file`` is detected and opened sharded automatically.
- ``sts3 shard-bench`` — benchmark the sharded engine against the
  single-process engine on one synthetic workload: throughput, bitwise
  answer identity, and the worker-kill recovery drill
  (docs/sharding.md; the CI gate is ``benchmarks/bench_shard.py``).

The CLI exists so a downstream user can try the system without writing
code; anything deeper should use the library API (see README).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from . import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``sts3`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="sts3",
        description="Set-based time-series similarity search (SIGMOD'16 STS3).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and component overview")
    sub.add_parser("datasets", help="list the synthetic dataset registry")

    demo = sub.add_parser("demo", help="end-to-end demo on synthetic ECG")
    demo.add_argument("--series", type=int, default=200, help="database size")
    demo.add_argument("--length", type=int, default=256, help="series length")
    demo.add_argument("--k", type=int, default=3, help="neighbours to return")
    demo.add_argument("--seed", type=int, default=0)

    query = sub.add_parser("query", help="k-NN query over a UCR-format file")
    query.add_argument("file", help="UCR-format text file (label + values per line)")
    query.add_argument("--query-index", type=int, default=0,
                       help="which series of the file to use as the query")
    query.add_argument("--k", type=int, default=5)
    query.add_argument("--sigma", type=float, default=3,
                       help="time-axis cell width in samples")
    query.add_argument("--epsilon", type=float, default=0.5,
                       help="value-axis cell height")
    query.add_argument(
        "--method",
        choices=["auto", "naive", "index", "pruning", "approximate", "minhash"],
        default="auto",
    )
    query.add_argument("--trace", action="store_true",
                       help="print the span trace of the query (docs/observability.md)")
    query.add_argument("--profile", action="store_true",
                       help="print a cProfile report of the query call")
    query.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                       help="per-query time budget: past half of it remaining "
                            "segments downgrade to approximate, past it they "
                            "are skipped (answer reports complete=False)")

    batch = sub.add_parser(
        "batch", help="batched k-NN queries over a UCR-format file"
    )
    batch.add_argument("file", help="UCR-format text file (label + values per line)")
    batch.add_argument("--queries", type=int, default=10,
                       help="use the LAST this-many series as the query batch")
    batch.add_argument("--k", type=int, default=5)
    batch.add_argument("--sigma", type=float, default=3,
                       help="time-axis cell width in samples")
    batch.add_argument("--epsilon", type=float, default=0.5,
                       help="value-axis cell height")
    batch.add_argument(
        "--method",
        choices=["auto", "naive", "index", "pruning", "approximate", "minhash"],
        default="index",
        help="index engages the vectorized batch kernel",
    )
    batch.add_argument("--workers", type=int, default=None,
                       help="fork this many worker processes")
    batch.add_argument("--limit", type=int, default=5,
                       help="print the answers of at most this many queries")
    batch.add_argument("--trace", action="store_true",
                       help="print the span trace of the batch")
    batch.add_argument("--metrics-json", type=str, default=None, metavar="PATH",
                       help="write per-stage timings + metric counters as JSON "
                            "('-' for stdout)")
    batch.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                       help="per-query time budget (see 'sts3 query --deadline-ms')")

    inspect = sub.add_parser(
        "inspect", help="print the segment catalog of a saved database"
    )
    inspect.add_argument("file", help="archive written by save_database")
    inspect.add_argument("--wal", type=str, default=None, metavar="DIR",
                         help="WAL directory (default: <file>.wal)")
    inspect.add_argument("--mmap", action="store_true",
                         help="open the archive zero-copy (v4 only): segments "
                              "stay mapped and the catalog reports their "
                              "on-disk payload bytes instead of resident ones")

    verify = sub.add_parser(
        "verify", help="offline checksum verification of an archive + WAL"
    )
    verify.add_argument("file", help="archive written by save_database")
    verify.add_argument("--wal", type=str, default=None, metavar="DIR",
                        help="WAL directory (default: <file>.wal)")

    recover = sub.add_parser(
        "recover", help="replay the WAL onto the archive and checkpoint"
    )
    recover.add_argument("file", help="archive written by save_database")
    recover.add_argument("--wal", type=str, default=None, metavar="DIR",
                         help="WAL directory (default: <file>.wal)")
    recover.add_argument("--output", type=str, default=None, metavar="PATH",
                         help="write the recovered archive here instead of "
                              "checkpointing over the input")

    join = sub.add_parser(
        "join", help="all-pairs similarity join over a UCR-format file"
    )
    join.add_argument("file", help="UCR-format text file")
    join.add_argument("--threshold", type=float, default=0.7,
                      help="minimum Jaccard similarity for a pair")
    join.add_argument("--sigma", type=float, default=3)
    join.add_argument("--epsilon", type=float, default=0.5)
    join.add_argument("--limit", type=int, default=20,
                      help="print at most this many pairs")

    bench = sub.add_parser(
        "bench", help="run the kernel-speed lever benchmark phases"
    )
    bench.add_argument("--levers", default="parallel,mmap,cache,combined",
                       help="comma-separated phases: parallel, mmap, cache, "
                            "combined")
    bench.add_argument("--series", type=int, default=2000,
                       help="database size per phase")
    bench.add_argument("--queries", type=int, default=32)
    bench.add_argument("--length", type=int, default=128)
    bench.add_argument("--k", type=int, default=10)
    bench.add_argument("--sigma", type=float, default=3)
    bench.add_argument("--epsilon", type=float, default=0.58)
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repetitions; best (min) time is reported")
    bench.add_argument("--workers", type=int, default=0,
                       help="thread workers for parallel/combined "
                            "(0 = cpu count)")
    bench.add_argument("--cache-bytes", type=int, default=8 << 20,
                       help="result-cache budget for cache/combined")
    bench.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="also write the phase records as JSON "
                            "('-' for stdout)")

    serve = sub.add_parser(
        "serve", help="run the asyncio query server (docs/serving.md)"
    )
    serve.add_argument("file", nargs="?", default=None,
                       help="data to serve: a save_database archive or a "
                            "UCR-format text file (omit for synthetic ECG)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=21335,
                       help="binary-protocol port (0 = ephemeral)")
    serve.add_argument("--http-port", type=int, default=21336,
                       help="HTTP adapter port (0 = ephemeral, -1 = disable)")
    serve.add_argument("--coalesce-ms", type=float, default=2.0,
                       help="micro-batching window for concurrent single "
                            "queries (0 disables coalescing)")
    serve.add_argument("--max-coalesce", type=int, default=64,
                       help="flush a window early at this many queries")
    serve.add_argument("--max-pending", type=int, default=256,
                       help="shed load (BUSY) past this many in-flight "
                            "requests")
    serve.add_argument("--rate", type=float, default=None, metavar="PER_S",
                       help="per-client sustained request rate; over it "
                            "requests fail RATE_LIMITED (default: unlimited)")
    serve.add_argument("--burst", type=int, default=20,
                       help="per-client burst allowance above --rate")
    serve.add_argument("--max-workers", type=int, default=None,
                       help="intra-query segment parallelism of the engine "
                            "(unset = serial, 0 = cpu count; DESIGN.md §13)")
    serve.add_argument("--cache-bytes", type=int, default=0,
                       help="query-result cache budget of the engine "
                            "(0 disables; DESIGN.md §13)")
    serve.add_argument("--sigma", type=float, default=3,
                       help="time-axis cell width (file/synthetic builds)")
    serve.add_argument("--epsilon", type=float, default=0.5,
                       help="value-axis cell height (file/synthetic builds)")
    serve.add_argument("--series", type=int, default=2000,
                       help="synthetic database size (no-file mode)")
    serve.add_argument("--length", type=int, default=128,
                       help="synthetic series length (no-file mode)")
    serve.add_argument("--seed", type=int, default=0,
                       help="synthetic stream seed (no-file mode)")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="serve through the sharded multi-process engine "
                            "with N shard workers (docs/sharding.md); the "
                            "built database is re-partitioned into a "
                            "temporary sharded archive")
    serve.add_argument("--replicas", type=int, default=0, metavar="R",
                       help="WAL-shipping followers per shard "
                            "(docs/replication.md); requires the sharded "
                            "engine (--shards or a sharded archive)")
    serve.add_argument("--read-preference", default="primary",
                       choices=("primary", "replica", "nearest"),
                       help="read endpoint policy when replicas are "
                            "configured (docs/replication.md)")
    serve.add_argument("--max-replica-lag", type=int, default=0,
                       metavar="RECORDS",
                       help="bounded staleness: followers more than this "
                            "many records behind are not read endpoints")
    serve.add_argument("--maintain", action="store_true",
                       help="run the background maintenance engine while "
                            "serving (docs/maintenance.md)")
    _add_maintenance_flags(serve)
    serve.add_argument("--maint-interval", type=float, default=0.25,
                       metavar="S",
                       help="maintenance wake-up interval in seconds")

    shard_bench = sub.add_parser(
        "shard-bench",
        help="benchmark the sharded engine vs single-process "
             "(docs/sharding.md)",
    )
    shard_bench.add_argument("--shards", type=int, default=4,
                             help="shard worker processes")
    shard_bench.add_argument("--series", type=int, default=4000,
                             help="database size")
    shard_bench.add_argument("--queries", type=int, default=64)
    shard_bench.add_argument("--length", type=int, default=128)
    shard_bench.add_argument("--k", type=int, default=10)
    shard_bench.add_argument("--sigma", type=float, default=3)
    shard_bench.add_argument("--epsilon", type=float, default=0.58)
    shard_bench.add_argument("--seed", type=int, default=42)
    shard_bench.add_argument("--repeats", type=int, default=3,
                             help="timed repetitions; best (min) is reported")
    shard_bench.add_argument("--no-faults", action="store_true",
                             help="skip the worker-kill recovery drill")
    shard_bench.add_argument("--json", type=str, default=None, metavar="PATH",
                             help="also write the phase record as JSON "
                                  "('-' for stdout)")

    replica_status = sub.add_parser(
        "replica-status",
        help="offline replication status of a sharded archive "
             "(docs/replication.md)",
    )
    replica_status.add_argument("dir", help="sharded archive directory")

    maintain = sub.add_parser(
        "maintain",
        help="offline maintenance: merge to the tier fixpoint, enforce "
             "the memory budget, checkpoint (docs/maintenance.md)",
    )
    maintain.add_argument("file", help="archive written by save_database")
    maintain.add_argument("--wal", type=str, default=None, metavar="DIR",
                          help="WAL directory (default: <file>.wal)")
    _add_maintenance_flags(maintain)
    maintain.add_argument("--dry-run", action="store_true",
                          help="report what would merge without writing")
    return parser


def _add_maintenance_flags(parser: argparse.ArgumentParser) -> None:
    """Tiering/budget/cadence knobs shared by ``serve`` and ``maintain``."""
    parser.add_argument("--max-segments", type=int, default=8,
                        help="background merges trigger past this many "
                             "live segments")
    parser.add_argument("--tier-base", type=int, default=64,
                        help="segments below this many series are tier 0")
    parser.add_argument("--fanout", type=int, default=4,
                        help="segments merged per tier step")
    parser.add_argument("--memory-budget", type=int, default=None,
                        metavar="BYTES",
                        help="evict cold segment payloads past this many "
                             "resident bytes (default: unlimited)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="RECORDS",
                        help="checkpoint the archive once this many WAL "
                             "records accumulate past it (archive mode "
                             "only; default: never)")


def _cmd_info() -> int:
    print(f"sts3 {__version__} — Set-based Similarity Search for Time Series")
    print("reproduction of Peng, Wang, Li, Gao (SIGMOD 2016)")
    print()
    print("components: naive / index / pruning / approximate STS3 searchers,")
    print("ED, DTW (+LB_Keogh/LB_Improved cascade), FastDTW, LCSS, FTSE,")
    print("EDR, ERP, PAA baselines; synthetic ECG + UCR-style data substrates.")
    return 0


def _cmd_datasets() -> int:
    from .data.registry import _SPECS  # internal read is fine for listing

    print(f"{'name':<10} {'train':>6} {'test':>6} {'length':>7} {'classes':>8}")
    for spec in _SPECS.values():
        print(
            f"{spec.name:<10} {spec.n_train:>6} {spec.n_test:>6} "
            f"{spec.length:>7} {spec.n_classes:>8}"
        )
    print("\nload with repro.data.load_dataset(name, scale=...); scale=1 is paper size")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import STS3Database
    from .data import ecg_stream, make_workload

    stream = ecg_stream((args.series + 1) * args.length, seed=args.seed)
    workload = make_workload(stream, args.series, 1, args.length)
    db = STS3Database(workload.database, sigma=3, epsilon=0.5)
    query = workload.queries[0]
    print(f"database: {args.series} ECG windows of length {args.length}")
    for method in ("naive", "index", "pruning", "approximate"):
        result = db.query(query, k=args.k, method=method)
        answers = ", ".join(
            f"#{n.index}(J={n.similarity:.3f})" for n in result.neighbors
        )
        print(f"{method:>12}: {answers}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .core import STS3Database
    from .data.loader import load_ucr_file

    dataset = load_ucr_file(args.file)
    if not 0 <= args.query_index < len(dataset):
        print(
            f"error: --query-index {args.query_index} out of range "
            f"(file has {len(dataset)} series)",
            file=sys.stderr,
        )
        return 2
    query = dataset.series[args.query_index]
    database = [s for i, s in enumerate(dataset.series) if i != args.query_index]
    db = STS3Database(database, sigma=args.sigma, epsilon=args.epsilon)
    if args.trace:
        from .obs import Tracer, use_tracer

        with use_tracer(Tracer()) as tracer:
            result = db.query(
                query, k=args.k, method=args.method, deadline_ms=args.deadline_ms
            )
        print("trace (ms, nested):")
        print(tracer.format_tree())
        print()
    elif args.profile:
        from .obs import profile_query

        result, report = profile_query(
            db, query, k=args.k, method=args.method, limit=15
        )
        print(report)
    else:
        result = db.query(
            query, k=args.k, method=args.method, deadline_ms=args.deadline_ms
        )
    print(f"query: series #{args.query_index} of {args.file}")
    if not result.complete:
        print(
            f"DEGRADED ({result.degraded_reason}): "
            f"skipped {', '.join(result.skipped_segments) or 'nothing'}"
        )
    print(f"{'rank':>4}  {'series':>7}  {'label':>6}  Jaccard")
    labels = [l for i, l in enumerate(dataset.labels) if i != args.query_index]
    for rank, n in enumerate(result.neighbors, start=1):
        print(
            f"{rank:>4}  #{n.index:>6}  {labels[n.index]:>6}  {n.similarity:.4f}"
        )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import time

    from .core import STS3Database, aggregate_stats
    from .data.loader import load_ucr_file

    dataset = load_ucr_file(args.file)
    if not 0 < args.queries < len(dataset):
        print(
            f"error: --queries {args.queries} must leave at least one "
            f"database series (file has {len(dataset)} series)",
            file=sys.stderr,
        )
        return 2
    split = len(dataset) - args.queries
    database = list(dataset.series[:split])
    queries = list(dataset.series[split:])
    db = STS3Database(database, sigma=args.sigma, epsilon=args.epsilon)

    tracer = None
    if args.trace or args.metrics_json:
        from .obs import Tracer, set_tracer

        tracer = Tracer()
        previous_tracer = set_tracer(tracer)
    start = time.perf_counter()
    try:
        results = db.query_batch(
            queries, k=args.k, method=args.method, workers=args.workers,
            deadline_ms=args.deadline_ms,
        )
    finally:
        elapsed = time.perf_counter() - start
        if tracer is not None:
            set_tracer(previous_tracer)

    print(
        f"{len(queries)} queries x top-{args.k} over {split} series "
        f"(method={args.method})"
    )
    print(f"elapsed: {elapsed:.3f}s  ({len(queries) / elapsed:.1f} queries/s)")
    stats = aggregate_stats(results)
    print(
        f"aggregate: {stats.exact_computations} exact computations, "
        f"{stats.pruned} pruned ({stats.pruning_rate:.1%})"
    )
    degraded = sum(1 for r in results if not r.complete)
    if degraded:
        reasons = sorted({r.degraded_reason for r in results if not r.complete})
        print(f"DEGRADED: {degraded}/{len(results)} answers ({', '.join(reasons)})")
    for qi, result in enumerate(results[: args.limit]):
        answers = ", ".join(
            f"#{n.index}(J={n.similarity:.3f})" for n in result.neighbors
        )
        print(f"  query {split + qi}: {answers}")
    if len(results) > args.limit:
        print(f"  ... and {len(results) - args.limit} more")
    if tracer is not None:
        _report_batch_observability(args, tracer, stats, elapsed, len(queries))
    return 0


#: span names that partition a batch query's work (docs/observability.md);
#: "tile" is excluded — it is a parent of filter/refine/select_topk and
#: would double-count.
_BATCH_STAGES = (
    "build_index", "plan", "transform", "filter", "refine", "select_topk", "merge"
)


def _report_batch_observability(args, tracer, stats, elapsed, n_queries) -> int:
    """Print the trace and/or write the metrics JSON for ``sts3 batch``."""
    import json

    from .obs import get_registry

    if args.trace:
        print("\ntrace (ms, nested):")
        print(tracer.format_tree())
    if not args.metrics_json:
        return 0
    stage_seconds = tracer.stage_seconds()
    stages = {name: stage_seconds.get(name, 0.0) for name in _BATCH_STAGES}
    # Wall-clock of the query work itself is the query_batch root span;
    # `elapsed` additionally includes tracer setup outside the root.
    wall = stage_seconds.get("query_batch", elapsed)
    covered = sum(stages.values())
    payload = {
        "command": "batch",
        "file": str(args.file),
        "method": args.method,
        "queries": n_queries,
        "k": args.k,
        "workers": args.workers,
        "wall_seconds": round(elapsed, 6),
        "query_batch_seconds": round(wall, 6),
        "stages_seconds": {k: round(v, 6) for k, v in stages.items()},
        "stage_coverage": round(covered / wall, 4) if wall else 0.0,
        "span_counts": tracer.stage_counts(),
        "aggregate_stats": {
            "candidates": stats.candidates,
            "exact_computations": stats.exact_computations,
            "pruned": stats.pruned,
            "pruning_rate": round(stats.pruning_rate, 6),
            "compression_rate": round(stats.compression_rate, 6),
        },
        "metrics": get_registry().snapshot(),
    }
    text = json.dumps(payload, indent=2) + "\n"
    if args.metrics_json == "-":
        print(text, end="")
    else:
        Path(args.metrics_json).write_text(text)
        print(f"wrote metrics to {args.metrics_json}")
    return 0


def _cmd_inspect_sharded(args: argparse.Namespace) -> int:
    """Sharded-archive inspection: manifest + per-shard offline checks.

    Pure file reads — no shard worker is spawned, so this is safe on a
    directory another process is actively serving.
    """
    from .core import verify_archive
    from .core.shard import ShardedDatabase
    from .exceptions import DatasetError

    try:
        manifest = ShardedDatabase.read_manifest(args.file)
    except Exception as exc:  # noqa: BLE001 - report and exit
        print(f"error: cannot read shard manifest: {exc}", file=sys.stderr)
        return 2
    print(f"sharded database: {args.file}")
    print(
        f"{manifest['series_total']} series across {manifest['shards']} "
        f"shard(s), hash seed {manifest['hash_seed']:#x}, "
        f"{manifest['vnodes']} vnodes/shard, next id {manifest['next_id']}"
    )
    replicas = int(manifest.get("replicas", 0))
    epochs = manifest.get("epochs") or [0] * int(manifest["shards"])
    wal_dirs = manifest.get("wal_dirs") or [None] * int(manifest["shards"])
    if replicas:
        print(f"replication: {replicas} follower(s) per shard")
    print(
        f"{'shard':>5} {'file':<16} {'series':>7} {'payloads':>9} "
        f"{'ckpt seq':>9} {'since ckpt':>11} {'epoch':>6} {'status':>8}"
    )
    problems = 0
    for shard_id, name in enumerate(manifest["files"]):
        path = Path(args.file) / name
        wal_dir = (
            Path(args.file) / wal_dirs[shard_id] if wal_dirs[shard_id] else None
        )
        try:
            report = verify_archive(path, wal_dir=wal_dir)
        except (DatasetError, OSError) as exc:
            print(f"{shard_id:>5} {name:<16} MISSING: {exc}")
            problems += 1
            continue
        n_series = sum(p["n_series"] for p in report["payloads"])
        wal = report["wal"]
        status = "ok" if not report["problems"] else "PROBLEMS"
        problems += len(report["problems"])
        print(
            f"{shard_id:>5} {name:<16} {n_series:>7} "
            f"{len(report['payloads']):>9} {wal['checkpoint_seq']:>9} "
            f"{wal['records_since_checkpoint']:>11} "
            f"{epochs[shard_id]:>6} {status:>8}"
        )
        for problem in report["problems"]:
            print(f"      PROBLEM: {problem}")
    if replicas:
        from .core.replication import replica_mirror_name
        from .core.wal import read_applied_seq, scan_wal

        print(f"{'shard':>5} {'mirror':<26} {'applied':>8} {'frames':>7}")
        for shard_id in range(int(manifest["shards"])):
            for replica_id in range(replicas):
                mirror_name = replica_mirror_name(shard_id, replica_id)
                mirror = Path(args.file) / mirror_name
                if not mirror.exists():
                    print(f"{shard_id:>5} {mirror_name:<26} {'-':>8} {'-':>7}")
                    continue
                applied = read_applied_seq(mirror)
                _, wal_report = scan_wal(mirror)
                print(
                    f"{shard_id:>5} {mirror_name:<26} "
                    f"{applied if applied is not None else '-':>8} "
                    f"{wal_report.records:>7}"
                )
    return 1 if problems else 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .core import load_database, shard_manifest_path, verify_archive
    from .exceptions import DatasetError

    if shard_manifest_path(args.file).exists():
        return _cmd_inspect_sharded(args)
    try:
        db = load_database(args.file, mmap=args.mmap)
    except (DatasetError, OSError, ValueError) as exc:
        print(f"error: cannot load {args.file}: {exc}", file=sys.stderr)
        return 2
    catalog = db.catalog
    print(f"database: {args.file}")
    print(
        f"{catalog.n_series} series in {len(catalog.segments)} segment(s), "
        f"{len(db.buffer)} buffered (capacity {db.buffer.capacity}), "
        f"generation {catalog.generation}, {db.rebuild_count} flush(es)"
    )
    from .core.maintenance import MaintenanceConfig, tier_of

    defaults = MaintenanceConfig()
    print(
        f"{'id':>4} {'offset':>7} {'series':>7} {'tier':>4} {'state':>8} "
        f"{'cells':>9} "
        f"{'sorted':>9} {'packed':>9} {'coarse':>9} {'checksum':>10}  "
        f"grid (rows x cols)"
    )
    for row in catalog.describe():
        rows = row["n_rows"]
        rows_text = (
            ",".join(str(r) for r in rows) if isinstance(rows, tuple) else str(rows)
        )
        memory = row["memory"]
        crc = row["payload_crc32"]
        checksum = f"{crc:08x}" if crc is not None else "-"
        tier = tier_of(row["n_series"], defaults.tier_base, defaults.fanout)
        print(
            f"{row['segment_id']:>4} {row['offset']:>7} {row['n_series']:>7} "
            f"{tier:>4} {row['state']:>8} "
            f"{row['n_cells']:>9} "
            f"{_fmt_bytes(memory['sorted_sets_bytes']):>9} "
            f"{_fmt_bytes(memory['packed_bitset_bytes']):>9} "
            f"{_fmt_bytes(memory['coarse_levels_bytes']):>9} "
            f"{checksum:>10}  "
            f"{rows_text} x {row['n_columns']}"
        )
    for record in catalog.quarantined:
        print(
            f"QUARANTINED {record.name}: {record.n_series} series lost "
            f"({record.reason})"
        )
    try:
        report = verify_archive(args.file, wal_dir=args.wal)
    except DatasetError:
        report = None
    if report is not None:
        wal = report["wal"]
        if wal["present"]:
            print(
                f"WAL: {wal['records']} record(s) in {wal['directory']}, "
                f"checkpoint seq {wal['checkpoint_seq']}, "
                f"{wal['records_since_checkpoint']} since checkpoint"
                + ("" if wal["clean"] else "  [DAMAGED — run sts3 recover]")
            )
        else:
            print(f"WAL: none at {wal['directory']}")
    health = db.maintenance_status()
    replay_lag = 0
    if report is not None and report["wal"]["present"]:
        replay_lag = report["wal"]["replay_lag"]
    print(
        f"maintenance: {health['live_segments']} live segment(s) "
        f"(threshold {health['max_segments'] or '-'}), "
        f"WAL replay lag {replay_lag}, "
        f"{_fmt_bytes(health['resident_bytes'])} resident "
        f"(budget {_fmt_bytes(health['memory_budget_bytes']) if health['memory_budget_bytes'] else '-'})"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .core import verify_archive
    from .exceptions import DatasetError

    try:
        report = verify_archive(args.file, wal_dir=args.wal)
    except (DatasetError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"archive: {report['path']} (format v{report['format_version']})")
    for payload in report["payloads"]:
        crc = payload["crc32"]
        checksum = f"{crc:08x}" if crc is not None else "-"
        print(
            f"  {payload['name']:<12} {payload['n_series']:>7} series  "
            f"crc {checksum:>10}  {payload['status']}"
        )
    wal = report["wal"]
    if wal["present"]:
        state = "clean" if wal["clean"] else "DAMAGED (torn tail)"
        print(
            f"wal: {wal['records']} record(s), replay lag "
            f"{wal['replay_lag']}, {state}"
        )
    else:
        print(f"wal: none at {wal['directory']}")
    for problem in report["problems"]:
        print(f"PROBLEM: {problem}")
    return 1 if report["problems"] else 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .core import recover_database, save_database
    from .exceptions import DatasetError

    try:
        db = recover_database(args.file, wal_dir=args.wal)
    except (DatasetError, OSError) as exc:
        print(f"error: cannot recover {args.file}: {exc}", file=sys.stderr)
        return 2
    output = args.output or args.file
    save_database(db, output)  # checkpoint: retires the replayed WAL
    db.close()
    print(
        f"recovered {len(db)} series in {len(db.catalog.segments)} segment(s) "
        f"-> {output}"
    )
    for record in db.catalog.quarantined:
        print(
            f"QUARANTINED {record.name}: {record.n_series} series lost "
            f"({record.reason})"
        )
    return 0


def _fmt_bytes(amount: int) -> str:
    """Human-readable byte count (fixed-ish width for table columns)."""
    value = float(amount)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{int(value)}B"  # pragma: no cover - unreachable


def _cmd_join(args: argparse.Namespace) -> int:
    from .core import STS3Database, similarity_join
    from .data.loader import load_ucr_file

    dataset = load_ucr_file(args.file)
    db = STS3Database(list(dataset.series), sigma=args.sigma, epsilon=args.epsilon)
    pairs = similarity_join(db.sets, args.threshold)
    print(
        f"{len(pairs)} pairs at J >= {args.threshold} among "
        f"{len(dataset)} series of {args.file}"
    )
    for pair in pairs[: args.limit]:
        print(f"  ({pair.first}, {pair.second})  J={pair.similarity:.4f}")
    if len(pairs) > args.limit:
        print(f"  ... and {len(pairs) - args.limit} more")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import render_table
    from .bench.levers import run_lever_phases

    levers = [lever.strip() for lever in args.levers.split(",") if lever.strip()]
    try:
        records = run_lever_phases(
            levers,
            n_series=args.series, n_queries=args.queries, length=args.length,
            sigma=args.sigma, epsilon=args.epsilon, k=args.k, seed=args.seed,
            repeats=args.repeats, workers=args.workers,
            cache_bytes=args.cache_bytes,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = []
    for record in records:
        phase = record["phase"]
        speedup_key = {
            "parallel": "parallel_speedup",
            "mmap": "mmap_open_speedup",
            "cache": "cache_hit_speedup",
            "combined": "combined_speedup",
        }[phase]
        baseline, levered = {
            "parallel": ("serial_seconds", "parallel_seconds"),
            "mmap": ("eager_open_seconds", "mmap_open_seconds"),
            "cache": ("uncached_seconds", "cached_seconds"),
            "combined": ("baseline_seconds", "levered_seconds"),
        }[phase]
        cores = record.get("available_cores")
        rows.append([
            phase,
            f"{record[baseline] * 1e3:.2f}",
            f"{record[levered] * 1e3:.2f}",
            f"{record[speedup_key]:.2f}x",
            f"{record['workers']}/{cores}" if cores is not None else "-",
            record["identical_neighbor_lists"],
        ])
    print(render_table(
        ["lever", "baseline (ms)", "levered (ms)", "speedup",
         "workers/cores", "identical"],
        rows,
        title=(
            f"lever phases over {args.series} series "
            f"(length {args.length}, k={args.k}, repeats {args.repeats})"
        ),
    ))
    core_bound = [
        r for r in records
        if r.get("available_cores") == 1 and "workers" in r
    ]
    if core_bound:
        phases = ", ".join(r["phase"] for r in core_bound)
        print(
            f"note: only 1 CPU core is available to this process — "
            f"~1.0x on the {phases} phase(s) is the hardware ceiling, "
            f"not a regression"
        )
    combined = next((r for r in records if r["phase"] == "combined"), None)
    if combined is not None:
        print(
            f"combined serving throughput: "
            f"{combined['combined_queries_per_second']:.1f} q/s levered vs "
            f"{combined['baseline_queries_per_second']:.1f} q/s baseline"
        )
    if args.json:
        import json

        text = json.dumps(records, indent=2) + "\n"
        if args.json == "-":
            print(text, end="")
        else:
            Path(args.json).write_text(text)
            print(f"wrote {args.json}")
    if not all(record["identical_neighbor_lists"] for record in records):
        print("error: a levered path returned different answers", file=sys.stderr)
        return 1
    return 0


def _serve_build_db(args: argparse.Namespace):
    """Build the database ``sts3 serve`` fronts, from any source."""
    from .core import STS3Database

    if args.file is None:
        from .data import ecg_stream, make_workload

        stream = ecg_stream((args.series + 1) * args.length, seed=args.seed)
        workload = make_workload(stream, args.series, 1, args.length)
        return STS3Database(
            workload.database, sigma=args.sigma, epsilon=args.epsilon,
            max_workers=args.max_workers, cache_bytes=args.cache_bytes,
        ), f"synthetic ECG ({args.series} x {args.length})"
    from .core import load_database
    from .exceptions import DatasetError

    try:
        return (
            load_database(
                args.file,
                max_workers=args.max_workers, cache_bytes=args.cache_bytes,
            ),
            f"archive {args.file}",
        )
    except (DatasetError, ValueError):
        pass  # not a save_database archive; try UCR text
    from .data.loader import load_ucr_file

    dataset = load_ucr_file(args.file)
    return STS3Database(
        list(dataset.series), sigma=args.sigma, epsilon=args.epsilon,
        max_workers=args.max_workers, cache_bytes=args.cache_bytes,
    ), f"UCR file {args.file}"


def _cmd_maintain(args: argparse.Namespace) -> int:
    """Offline maintenance pass over an archive + WAL."""
    from .core import (
        MaintenanceConfig,
        MaintenanceEngine,
        plan_merge,
        recover_database,
        save_database,
    )
    from .exceptions import DatasetError

    try:
        db = recover_database(args.file, wal_dir=args.wal)
    except (DatasetError, OSError) as exc:
        print(f"error: cannot open {args.file}: {exc}", file=sys.stderr)
        return 2
    config = MaintenanceConfig(
        max_segments=args.max_segments,
        tier_base=args.tier_base,
        fanout=args.fanout,
        memory_budget_bytes=args.memory_budget,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.file,
    )
    before = [len(seg) for seg in db.catalog.segments]
    if args.dry_run:
        window = plan_merge(db.catalog.segments, config)
        print(f"layout: {before}")
        if window is None:
            print("at fixpoint: nothing to merge")
        else:
            start, stop = window
            print(
                f"would merge segments [{start}:{stop}] "
                f"({sum(before[start:stop])} series), then re-plan"
            )
        db.close()
        return 0
    engine = MaintenanceEngine(db, config)
    engine.run_until_idle()
    save_database(db, args.file)  # checkpoint: retires the replayed WAL
    after = [len(seg) for seg in db.catalog.segments]
    print(
        f"merged {len(before)} -> {len(after)} segment(s) "
        f"({engine.merges} merge(s)), layout {after}"
    )
    if engine.evictions:
        print(
            f"evicted {engine.evictions} segment payload(s), "
            f"{_fmt_bytes(engine.evicted_bytes)} freed"
        )
    print(f"checkpointed -> {args.file}")
    db.close()
    return 0


def _serve_build_sharded(args: argparse.Namespace):
    """The ``--shards``/sharded-archive paths of ``sts3 serve``.

    Returns ``(db, source, cleanup)``: an open
    :class:`~repro.core.shard.ShardedDatabase` plus a cleanup callable
    (closes the workers; removes the temporary sharded archive when one
    was built from a non-sharded source).
    """
    import tempfile

    from .core import shard_manifest_path
    from .core.shard import ShardedDatabase

    replication = dict(
        replicas=args.replicas or None,
        read_preference=args.read_preference,
        max_replica_lag=args.max_replica_lag,
    )
    if args.file is not None and shard_manifest_path(args.file).exists():
        db = ShardedDatabase.open(args.file, **replication)
        return db, f"sharded archive {args.file}", db.close
    if args.shards < 2:
        raise ValueError(f"--shards must be >= 2, got {args.shards}")
    base, source = _serve_build_db(args)
    tmp = tempfile.TemporaryDirectory(prefix="sts3-serve-shards-")
    try:
        db = ShardedDatabase.from_database(
            base,
            args.shards,
            Path(tmp.name) / "shards",
            replicas=args.replicas,
            read_preference=args.read_preference,
            max_replica_lag=args.max_replica_lag,
        )
    except BaseException:
        tmp.cleanup()
        raise
    finally:
        base.close()

    def cleanup() -> None:
        db.close()
        tmp.cleanup()

    workers = f"{source}, {args.shards} shard workers"
    if args.replicas:
        workers += f" + {args.replicas} replica(s)/shard"
    return db, workers, cleanup


def _cmd_replica_status(args: argparse.Namespace) -> int:
    """Offline replication status: manifests, watermarks, mirror scans.

    Pure file reads — safe on a directory another process is serving.
    Lag here is *on-disk* lag (primary WAL frames minus the follower's
    persisted watermark); a live engine reports the same figure through
    :meth:`ShardedDatabase.replica_status` and the lag gauges.
    """
    from .core.replication import replica_mirror_name
    from .core.shard import ShardedDatabase
    from .core.wal import read_applied_seq, scan_wal

    try:
        manifest = ShardedDatabase.read_manifest(args.dir)
    except Exception as exc:  # noqa: BLE001 - report and exit
        print(f"error: cannot read shard manifest: {exc}", file=sys.stderr)
        return 2
    n_shards = int(manifest["shards"])
    replicas = int(manifest.get("replicas", 0))
    epochs = manifest.get("epochs") or [0] * n_shards
    wal_dirs = manifest.get("wal_dirs") or [None] * n_shards
    base = Path(args.dir)
    print(f"sharded archive: {args.dir} ({replicas} follower(s)/shard)")
    print(f"{'shard':>5} {'epoch':>6} {'live wal':<26} {'last seq':>9}")
    primary_seq: list[int] = []
    for shard_id in range(n_shards):
        name = wal_dirs[shard_id] or manifest["files"][shard_id] + ".wal"
        _, report = scan_wal(base / name)
        primary_seq.append(report.last_seq)
        print(
            f"{shard_id:>5} {epochs[shard_id]:>6} {name:<26} "
            f"{report.last_seq:>9}"
        )
    if not replicas:
        print("no replicas configured")
        return 0
    print(f"{'shard':>5} {'replica':>7} {'applied':>8} {'lag':>6} {'frames':>7}")
    for shard_id in range(n_shards):
        for replica_id in range(replicas):
            mirror = base / replica_mirror_name(shard_id, replica_id)
            if not mirror.exists():
                print(
                    f"{shard_id:>5} {replica_id:>7} {'-':>8} {'-':>6} {'-':>7}"
                )
                continue
            applied = read_applied_seq(mirror) or 0
            _, mirror_report = scan_wal(mirror)
            lag = max(0, primary_seq[shard_id] - applied)
            print(
                f"{shard_id:>5} {replica_id:>7} {applied:>8} {lag:>6} "
                f"{mirror_report.records:>7}"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .exceptions import DatasetError
    from .serve import ServiceConfig, serve as serve_forever

    cleanup = None
    sharded = args.shards > 0 or (
        args.file is not None
        and (Path(args.file) / "shard-manifest.json").exists()
    )
    if sharded and args.maintain:
        print(
            "error: --maintain runs inside each shard's own process and "
            "is not available with the sharded engine",
            file=sys.stderr,
        )
        return 2
    try:
        if sharded:
            db, source, cleanup = _serve_build_sharded(args)
        else:
            db, source = _serve_build_db(args)
    except (DatasetError, OSError, ValueError) as exc:
        print(f"error: cannot serve {args.file}: {exc}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        coalesce_window_ms=args.coalesce_ms,
        max_coalesce=args.max_coalesce,
        max_pending=args.max_pending,
        rate_limit=args.rate,
        rate_burst=args.burst,
    )
    if args.maintain:
        from .core import MaintenanceConfig

        db.enable_maintenance(MaintenanceConfig(
            max_segments=args.max_segments,
            tier_base=args.tier_base,
            fanout=args.fanout,
            memory_budget_bytes=args.memory_budget,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=args.file if source.startswith("archive") else None,
            interval_s=args.maint_interval,
        ), start=True)

    def ready(server) -> None:
        print(f"serving {source}: {len(db)} series")
        if args.maintain:
            print(
                f"maintenance engine on: merge past {args.max_segments} "
                f"segment(s), every {args.maint_interval}s"
            )
        print(f"binary protocol on {args.host}:{server.port}")
        if server.http_port is not None:
            print(
                f"http adapter on {args.host}:{server.http_port} "
                "(/healthz, /metrics, /v1/query, /v1/batch, /v1/insert, "
                "/v1/verify)"
            )
        print("Ctrl-C drains in-flight requests and exits")

    http_port = None if args.http_port < 0 else args.http_port
    try:
        asyncio.run(serve_forever(
            db, config, host=args.host, port=args.port, http_port=http_port,
            ready=ready,
        ))
    except KeyboardInterrupt:
        pass  # signal handler already drained
    finally:
        if cleanup is not None:
            cleanup()
    return 0


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    from .bench import render_table
    from .bench.shard import run_shard_phase
    from .exceptions import ReproError

    try:
        record = run_shard_phase(
            n_series=args.series, n_queries=args.queries, length=args.length,
            sigma=args.sigma, epsilon=args.epsilon, k=args.k, seed=args.seed,
            repeats=args.repeats, shards=args.shards,
            check_faults=not args.no_faults,
        )
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_table(
        ["engine", "batch (ms)", "queries/s"],
        [
            ["single-process", f"{record['single_seconds'] * 1e3:.2f}",
             f"{record['single_queries_per_second']:.1f}"],
            [f"{record['shards']} shards",
             f"{record['sharded_seconds'] * 1e3:.2f}",
             f"{record['sharded_queries_per_second']:.1f}"],
        ],
        title=(
            f"shard lever over {args.series} series "
            f"({args.queries} queries, k={args.k}, "
            f"{record['available_cores']} core(s) available)"
        ),
    ))
    print(
        f"speedup: {record['shard_speedup']:.2f}x  "
        f"bit-identical answers: {record['identical_neighbor_lists']}"
    )
    if record["available_cores"] < record["shards"]:
        print(
            f"note: {record['shards']} shards on "
            f"{record['available_cores']} core(s) — shard workers are "
            f"time-slicing; speedup reflects the hardware, not the engine"
        )
    if not args.no_faults:
        print(
            f"worker-kill drill: shard {record['fault_killed_shard']} killed "
            f"after acked insert #{record['fault_insert_id']} — "
            f"degraded-then-recovered {record['fault_degraded_first']}, "
            f"acked write found {record['fault_acked_write_found']} "
            f"({record['fault_recovery_seconds'] * 1e3:.1f} ms)"
        )
    if args.json:
        import json

        text = json.dumps(record, indent=2) + "\n"
        if args.json == "-":
            print(text, end="")
        else:
            Path(args.json).write_text(text)
            print(f"wrote {args.json}")
    failures = []
    if not record["identical_neighbor_lists"]:
        failures.append("sharded answers differ from single-process")
    if not args.no_faults and not record["fault_ok"]:
        failures.append("worker-kill drill failed")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "join":
        return _cmd_join(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "shard-bench":
        return _cmd_shard_bench(args)
    if args.command == "replica-status":
        return _cmd_replica_status(args)
    if args.command == "maintain":
        return _cmd_maintain(args)
    return _cmd_query(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
