"""Tests for the set-based subsequence searcher."""

import numpy as np
import pytest

from repro.core.jaccard import jaccard
from repro.core.subsequence import SubsequenceMatch, SubsequenceSearcher
from repro.data import ecg_stream
from repro.exceptions import ParameterError


def _brute_force_best(searcher, query):
    """Exhaustive exact sliding-window Jaccard — ground truth."""
    n = len(query)
    q_cols = np.arange(n) // searcher.sigma
    q_rows = searcher._rows_of(np.asarray(query, dtype=np.float64))
    q_set = np.unique(q_cols * searcher._n_rows + q_rows)
    best_offset, best_sim = -1, -1.0
    for offset in range(len(searcher.stream) - n + 1):
        sim = jaccard(searcher.window_set(offset, n), q_set)
        if sim > best_sim:
            best_offset, best_sim = offset, sim
    return best_offset, best_sim


class TestConstruction:
    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            SubsequenceSearcher(np.zeros((5, 2)), 2, 0.5)

    def test_rejects_short_stream(self):
        with pytest.raises(ParameterError):
            SubsequenceSearcher(np.zeros(1), 2, 0.5)

    def test_rejects_bad_params(self):
        stream = np.arange(20.0)
        with pytest.raises(ParameterError):
            SubsequenceSearcher(stream, 0, 0.5)
        with pytest.raises(ParameterError):
            SubsequenceSearcher(stream, 2, 0.0)


class TestSearchValidation:
    @pytest.fixture(scope="class")
    def searcher(self):
        return SubsequenceSearcher(np.sin(np.linspace(0, 30, 400)), sigma=4, epsilon=0.2)

    def test_query_too_long(self, searcher):
        with pytest.raises(ParameterError):
            searcher.search(np.zeros(500))

    def test_query_too_short(self, searcher):
        with pytest.raises(ParameterError):
            searcher.search(np.zeros(2))

    def test_bad_k(self, searcher):
        with pytest.raises(ParameterError):
            searcher.search(np.zeros(40), k=0)

    def test_rejects_2d_query(self, searcher):
        with pytest.raises(ParameterError):
            searcher.search(np.zeros((10, 2)))


class TestPlantedPattern:
    def test_exact_copy_found_at_exact_offset(self):
        rng = np.random.default_rng(0)
        stream = rng.normal(0, 0.3, size=600)
        pattern = 2.0 * np.sin(np.linspace(0, 8, 80))
        plant_at = 256
        stream[plant_at : plant_at + 80] = pattern
        searcher = SubsequenceSearcher(stream, sigma=4, epsilon=0.3)
        (match,) = searcher.search(pattern, k=1, refine=True)
        assert match.offset == plant_at
        assert match.similarity == 1.0

    def test_column_aligned_plant_found_without_refine(self):
        rng = np.random.default_rng(1)
        stream = rng.normal(0, 0.3, size=600)
        pattern = 2.0 * np.sin(np.linspace(0, 8, 80))
        plant_at = 64 * 4  # multiple of sigma: column-aligned
        stream[plant_at : plant_at + 80] = pattern
        searcher = SubsequenceSearcher(stream, sigma=4, epsilon=0.3)
        (match,) = searcher.search(pattern, k=1, refine=False)
        assert match.offset == plant_at

    def test_two_plants_found_as_top2(self):
        rng = np.random.default_rng(2)
        stream = rng.normal(0, 0.3, size=900)
        pattern = 2.0 * np.sin(np.linspace(0, 8, 80))
        for plant_at in (120, 640):
            stream[plant_at : plant_at + 80] = pattern
        searcher = SubsequenceSearcher(stream, sigma=4, epsilon=0.3)
        matches = searcher.search(pattern, k=2, refine=True)
        assert sorted(m.offset for m in matches) == [120, 640]

    def test_noisy_plant_still_best(self):
        rng = np.random.default_rng(3)
        stream = rng.normal(0, 0.3, size=600)
        pattern = 2.0 * np.sin(np.linspace(0, 8, 80))
        plant_at = 300
        stream[plant_at : plant_at + 80] = pattern + rng.normal(0, 0.1, size=80)
        searcher = SubsequenceSearcher(stream, sigma=4, epsilon=0.3)
        (match,) = searcher.search(pattern, k=1, refine=True)
        assert abs(match.offset - plant_at) <= 4


class TestAgainstBruteForce:
    def test_refined_top1_matches_exhaustive(self):
        """With refinement, the top answer should equal (or tie) the
        brute-force best over all sample offsets."""
        stream = ecg_stream(1200, seed=4)
        searcher = SubsequenceSearcher(stream, sigma=4, epsilon=0.25)
        query = stream[500:628].copy()
        brute_offset, brute_sim = _brute_force_best(searcher, query)
        (match,) = searcher.search(query, k=1, refine=True)
        assert match.similarity >= brute_sim - 1e-12
        assert match.offset == brute_offset or match.similarity == pytest.approx(brute_sim)

    def test_candidate_intersections_exact_for_aligned_offsets(self):
        """The sparse-join intersection counts must equal directly
        computed intersections at every column-aligned offset."""
        rng = np.random.default_rng(5)
        stream = rng.normal(size=300)
        searcher = SubsequenceSearcher(stream, sigma=3, epsilon=0.4)
        query = stream[90:150].copy()  # aligned: 90 = 30 * sigma
        n = len(query)
        q_cols = np.arange(n) // searcher.sigma
        q_rows = searcher._rows_of(query)
        q_set = np.unique(q_cols * searcher._n_rows + q_rows)
        matches = searcher.search(query, k=1, refine=False)
        # reference at the returned aligned offset
        best = matches[0]
        ref = jaccard(searcher.window_set(best.offset, n), q_set)
        assert best.similarity == pytest.approx(ref)


class TestSparseJoinProperty:
    """Hypothesis check: the sparse-join candidate scores equal direct
    evaluation at *every* column-aligned offset, not just the winner."""

    def test_all_aligned_offsets_exact(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(seed=st.integers(0, 5000), sigma=st.integers(2, 6))
        @settings(max_examples=20, deadline=None)
        def check(seed, sigma):
            rng = np.random.default_rng(seed)
            stream = rng.normal(size=240)
            searcher = SubsequenceSearcher(stream, sigma=sigma, epsilon=0.5)
            n = sigma * 10
            query = rng.normal(size=n)
            q_cols = np.arange(n) // sigma
            q_rows = searcher._rows_of(query)
            q_set = np.unique(q_cols * searcher._n_rows + q_rows)
            # reproduce the searcher's internal candidate similarities
            # by asking for every offset as a (non-refined) top match
            window_columns = int(np.ceil(n / sigma))
            max_c0 = searcher.n_columns - window_columns
            matches = searcher.search(query, k=max_c0 + 1, refine=False)
            for match in matches:
                c0 = match.offset // sigma
                direct = jaccard(searcher.window_set(c0 * sigma, n), q_set)
                assert match.similarity == pytest.approx(direct)

        check()


class TestMatchType:
    def test_frozen(self):
        m = SubsequenceMatch(3, 0.5)
        with pytest.raises(AttributeError):
            m.offset = 4
