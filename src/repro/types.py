"""Shared container types used across the :mod:`repro` package.

The core algorithms operate directly on ``numpy`` arrays: a time series
is a float array of shape ``(n,)`` (one-dimensional, the paper's default
setting) or ``(n, d)`` (multi-dimensional, Section 5.1).  The classes
here are light wrappers used to move *collections* of series around —
labeled classification datasets and database/query workloads — without
inventing a heavyweight object model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .exceptions import DatasetError

__all__ = [
    "LabeledDataset",
    "ClassificationDataset",
    "Workload",
    "as_series",
    "series_length",
    "series_dim",
]


def as_series(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Coerce ``values`` into a float64 time-series array.

    Accepts any 1-D or 2-D sequence.  Raises :class:`DatasetError` for
    empty input, higher-rank arrays, or non-finite values, so malformed
    data fails loudly at the boundary instead of deep inside a search.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim not in (1, 2):
        raise DatasetError(f"a time series must be 1-D or 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise DatasetError("a time series must contain at least one point")
    if not np.all(np.isfinite(arr)):
        raise DatasetError("time series contains NaN or infinite values")
    return arr


def series_length(series: np.ndarray) -> int:
    """Number of time points in a ``(n,)`` or ``(n, d)`` series."""
    return int(series.shape[0])


def series_dim(series: np.ndarray) -> int:
    """Number of value dimensions of a series (1 for a flat array)."""
    return 1 if series.ndim == 1 else int(series.shape[1])


@dataclass
class LabeledDataset:
    """A list of time series with one integer class label per series."""

    series: list[np.ndarray]
    labels: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.series) != len(self.labels):
            raise DatasetError(
                f"{len(self.series)} series but {len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.series)

    def __iter__(self) -> Iterator[tuple[np.ndarray, int]]:
        return zip(self.series, self.labels.tolist())

    @property
    def n_classes(self) -> int:
        """Number of distinct labels present."""
        return int(np.unique(self.labels).size)

    def split_half(self, seed: int = 0) -> tuple["LabeledDataset", "LabeledDataset"]:
        """Split into two halves with per-class balance.

        Mirrors the paper's parameter-tuning protocol (Section 7.2.2):
        "the TRAIN dataset is divided into two parts ... the number of
        time series belonging to same class is equal in each part."
        """
        rng = np.random.default_rng(seed)
        first: list[int] = []
        second: list[int] = []
        for label in np.unique(self.labels):
            idx = np.flatnonzero(self.labels == label)
            rng.shuffle(idx)
            half = len(idx) // 2
            first.extend(idx[:half].tolist())
            second.extend(idx[half:].tolist())
        return self.subset(first), self.subset(second)

    def subset(self, indices: Sequence[int]) -> "LabeledDataset":
        """New dataset containing only the series at ``indices``."""
        idx = list(indices)
        return LabeledDataset(
            series=[self.series[i] for i in idx],
            labels=self.labels[idx],
            name=self.name,
        )


@dataclass
class ClassificationDataset:
    """A named TRAIN/TEST pair in the UCR-archive style."""

    name: str
    train: LabeledDataset
    test: LabeledDataset

    @property
    def length(self) -> int:
        """Length of the series (UCR datasets are equal-length)."""
        return series_length(self.train.series[0])

    @property
    def n_classes(self) -> int:
        """Number of distinct labels in the training part."""
        return self.train.n_classes

    def describe(self) -> str:
        """One-line summary matching the paper's Table 8 columns."""
        return (
            f"{self.name}: train={len(self.train)} test={len(self.test)} "
            f"len={self.length} classes={self.n_classes}"
        )


@dataclass
class Workload:
    """A similarity-search workload: a database plus a batch of queries.

    Built by :mod:`repro.data.workloads` following the paper's protocol
    (Section 7): consecutive, z-normalized, equal-length slices of a
    long source stream.
    """

    database: list[np.ndarray]
    queries: list[np.ndarray]
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.database:
            raise DatasetError("a workload needs at least one database series")
        if not self.queries:
            raise DatasetError("a workload needs at least one query")

    @property
    def length(self) -> int:
        return series_length(self.database[0])
