"""Statistical verification of the MinHash/LSH theory.

- Per-row collision probability of MinHash signatures equals the
  Jaccard similarity (within binomial sampling error).
- The banded-LSH candidate probability follows the S-curve
  ``P(candidate) = 1 − (1 − s^r)^b`` (within Monte-Carlo error).

These are the guarantees the approximate searcher's recall rests on,
so they get their own focused statistical tests (seeded, tolerance
chosen at ~4σ so they are deterministic in practice).
"""

import numpy as np
import pytest

from repro.core.jaccard import jaccard
from repro.core.minhash import LSHIndex, MinHasher


def _pair_with_similarity(rng, target, size=300):
    shared = int(round(2 * size * target / (1 + target)))
    core = rng.choice(10**6, size=shared, replace=False)
    a_rest = rng.choice(np.arange(10**6, 2 * 10**6), size=size - shared, replace=False)
    b_rest = rng.choice(np.arange(2 * 10**6, 3 * 10**6), size=size - shared, replace=False)
    a = np.unique(np.concatenate([core, a_rest])).astype(np.int64)
    b = np.unique(np.concatenate([core, b_rest])).astype(np.int64)
    return a, b


class TestRowCollisionProbability:
    @pytest.mark.parametrize("target", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_matches_jaccard(self, target):
        rng = np.random.default_rng(17)
        hasher = MinHasher(num_perm=1024, seed=3)
        a, b = _pair_with_similarity(rng, target)
        true = jaccard(a, b)
        agreement = float(
            np.mean(hasher.signature(a) == hasher.signature(b))
        )
        sigma = np.sqrt(true * (1 - true) / 1024)
        assert abs(agreement - true) <= 4 * sigma + 0.01


class TestBandSCurve:
    def test_candidate_probability_follows_curve(self):
        """Empirical collision rate vs 1 − (1 − s^r)^b at three
        similarity levels, with fresh hashers as Monte-Carlo trials."""
        bands, rows = 16, 4
        num_perm = bands * rows
        trials = 60
        for target in (0.3, 0.6, 0.9):
            rng = np.random.default_rng(int(target * 100))
            hits = 0
            sims = []
            for trial in range(trials):
                a, b = _pair_with_similarity(rng, target, size=200)
                sims.append(jaccard(a, b))
                hasher = MinHasher(num_perm, seed=1000 + trial)
                index = LSHIndex(num_perm, bands)
                index.insert(0, hasher.signature(a))
                if 0 in index.candidates(hasher.signature(b)).tolist():
                    hits += 1
            s = float(np.mean(sims))
            expected = 1 - (1 - s**rows) ** bands
            observed = hits / trials
            sigma = np.sqrt(max(expected * (1 - expected), 0.01) / trials)
            assert abs(observed - expected) <= 4 * sigma + 0.05

    def test_knee_orders_correctly(self):
        """Below the knee collisions are rare, above frequent."""
        bands, rows = 8, 16  # knee near s = (1/b)^(1/r) ≈ 0.88
        num_perm = bands * rows
        rng = np.random.default_rng(5)

        def rate(target):
            hits = 0
            for trial in range(30):
                a, b = _pair_with_similarity(rng, target, size=200)
                hasher = MinHasher(num_perm, seed=2000 + trial)
                index = LSHIndex(num_perm, bands)
                index.insert(0, hasher.signature(a))
                hits += 0 in index.candidates(hasher.signature(b)).tolist()
            return hits / 30

        assert rate(0.95) > rate(0.5) + 0.3
