"""Plain-text table rendering for benchmark output.

The benchmark suite prints each reproduced table/figure as an aligned
text table so the paper's rows can be compared side by side in the
captured output (``bench_output.txt``).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object, precision: int = 3) -> str:
    """Human-friendly cell formatting: floats rounded, rest via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 10 ** -precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned text table with an optional title line."""
    text_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)
