"""Tests for the benchmark-harness support package."""

import pytest

from repro.bench import Timer, render_table, repro_scale, scaled, time_callable
from repro.bench.tables import format_value


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10_000))
        assert t.seconds > 0
        assert t.millis == pytest.approx(t.seconds * 1000)

    def test_time_callable(self):
        assert time_callable(lambda: None, repeat=3) >= 0

    def test_time_callable_rejects_bad_repeat(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeat=0)


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert repro_scale() == 0.05

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert repro_scale() == 0.5

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            repro_scale()

    def test_nonpositive_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            repro_scale()

    def test_scaled_respects_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(100, minimum=5) == 5

    def test_scaled_explicit_factor(self):
        assert scaled(100, scale=0.5) == 50


class TestTables:
    def test_render_basic(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", 0.333333]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "0.333" in text

    def test_title(self):
        text = render_table(["c"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_format_value(self):
        assert format_value(float("nan")) == "-"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(0.5) == "0.5"
        assert format_value(True) == "True"
        assert format_value("abc") == "abc"
