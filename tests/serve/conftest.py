"""Shared fixtures of the serving tests.

Every test runs against a fresh metrics registry (server counters must
not leak between tests, and tests assert on exact counts) and most use
the same small ECG database, built once per module.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STS3Database
from repro.data import ecg_stream, make_workload
from repro.obs import NOOP, MetricsRegistry, set_registry, set_tracer

N_SERIES = 200
N_QUERIES = 12
LENGTH = 96


@pytest.fixture(autouse=True)
def _isolated_observability():
    previous_registry = set_registry(MetricsRegistry())
    previous_tracer = set_tracer(NOOP)
    try:
        yield
    finally:
        set_registry(previous_registry)
        set_tracer(previous_tracer)


@pytest.fixture(scope="module")
def workload():
    stream = ecg_stream((N_SERIES + N_QUERIES) * LENGTH, seed=7)
    return make_workload(stream, N_SERIES, N_QUERIES, LENGTH)


@pytest.fixture
def db(workload):
    return STS3Database(workload.database, sigma=3, epsilon=0.5)


@pytest.fixture
def queries(workload):
    return [np.asarray(q) for q in workload.queries]


def ticking_clock(step: float):
    """A fake monotonic clock advancing ``step`` seconds per call."""
    ticks = iter(np.arange(0.0, 10_000.0, step))
    return lambda: float(next(ticks))


def make_multiseg_db() -> tuple[STS3Database, np.ndarray]:
    """A three-segment database + query, for deadline-ladder scenarios.

    Mirrors the degraded-query fixture: a large bootstrap segment plus
    two sealed deltas, so the ladder has segments to downgrade/skip.
    """
    from repro.core.planner import SMALL_SEGMENT

    length = 48
    rng = np.random.default_rng(21)
    base = [rng.normal(size=length) for _ in range(SMALL_SEGMENT + 16)]
    database = STS3Database(base, sigma=2, epsilon=0.5, buffer_capacity=4)
    for _ in range(4):  # longer => out-of-bound => buffered => sealed
        database.insert(rng.normal(size=length + 8))
    for _ in range(4):  # longer still => out of the new bound too
        database.insert(rng.normal(size=length + 32))
    assert len(database.catalog.segments) == 3
    query = np.random.default_rng(77).normal(size=length)
    return database, query
