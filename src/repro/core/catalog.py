"""Segment catalog: the index-lifecycle layer (DESIGN.md §10).

:class:`SegmentCatalog` tracks the live, immutable
:class:`~repro.core.segment.Segment` objects in global-index order,
assigns segment IDs, and bumps a generation number on every structural
change (bootstrap, seal, extend, compact).  It replaces the seed's
ad-hoc ``_invalidate``/cached-searcher dance in ``database.py``: since
segments own their searcher caches and never mutate, "invalidation" is
simply replacing a segment, and anything holding a stale generation
number knows to re-plan.

Lifecycle spans/counters (docs/observability.md): sealing a buffer
emits a ``segment.seal`` span and increments
``sts3_segments_sealed_total``; merging emits ``segment.compact`` and
increments ``sts3_rebuilds_total`` (compaction is where the seed's
full-rebuild cost now lives).  The ``sts3_live_segments`` gauge tracks
the catalog size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..obs import get_registry, span
from .grid import Bound, Grid
from .segment import Segment, count_transforms
from .setrep import transform

__all__ = ["QuarantineRecord", "SegmentCatalog"]


@dataclass(frozen=True)
class QuarantineRecord:
    """A segment payload the loader refused to trust (DESIGN.md §12).

    ``name`` is the payload's manifest name (``segment-<position>`` or
    ``buffer``), ``n_series`` how many series the manifest said it held.
    Quarantined payloads are *skipped*, not restored: the surviving
    segments pack consecutively, so global indices shift — queries
    against a quarantined catalog report ``complete=False`` with
    ``degraded_reason="quarantine"`` rather than pretending nothing
    happened.
    """

    name: str
    n_series: int
    reason: str


class SegmentCatalog:
    """Ordered collection of live segments plus their shared parameters.

    Global series index ``g`` lives in the segment at the largest
    offset ``<= g`` (see :meth:`offsets`); segment order therefore
    *is* insertion order, and compaction only ever merges consecutive
    runs so that global indices — the identity queries report — stay
    stable across every lifecycle operation.
    """

    def __init__(self, sigma: float, epsilon, value_padding: float = 0.0):
        self.sigma = float(sigma)
        self.epsilon = epsilon
        self.value_padding = float(value_padding)
        self.segments: list[Segment] = []
        #: payloads the loader could not verify — see :meth:`quarantine`.
        self.quarantined: list[QuarantineRecord] = []
        #: bumped on every structural change; cheap staleness check for
        #: anything caching per-segment derived state.
        self.generation = 0
        self._next_id = 0
        self._offsets: list[int] | None = None

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    @property
    def n_series(self) -> int:
        """Total series across all segments (excludes any update buffer)."""
        return sum(len(seg) for seg in self.segments)

    def offsets(self) -> list[int]:
        """Global index of each segment's first series (cached per generation)."""
        if self._offsets is None:
            offsets, total = [], 0
            for seg in self.segments:
                offsets.append(total)
                total += len(seg)
            self._offsets = offsets
        return self._offsets

    def all_series(self) -> list[np.ndarray]:
        """Every series in global-index order (a fresh list)."""
        return [s for seg in self.segments for s in seg.series]

    def _allocate_id(self) -> int:
        segment_id = self._next_id
        self._next_id += 1
        return segment_id

    def _bump(self) -> None:
        self.generation += 1
        self._offsets = None
        get_registry().gauge(
            "sts3_live_segments", "segments currently in the catalog"
        ).set(len(self.segments))

    def touch(self) -> None:
        """Bump the generation without a structural change.

        Buffered inserts use this: the segment layout (and therefore
        the offsets cache) is untouched, but anything keyed on the
        generation — calibration, the query-result cache — must stop
        trusting answers computed before the buffer changed.
        """
        self.generation += 1

    # -- lifecycle ------------------------------------------------------

    def bootstrap(self, series: list[np.ndarray]) -> Segment:
        """Build the base segment from the initial database series."""
        segment = Segment.build(
            self._allocate_id(), series, self.sigma, self.epsilon,
            value_padding=self.value_padding, context="build",
        )
        self.segments.append(segment)
        self._bump()
        return segment

    def seal(
        self, series: list[np.ndarray], grid: Grid, sets: list[np.ndarray]
    ) -> Segment:
        """Seal already-transformed series (a drained buffer) as a segment.

        The buffer's grid and set representations are adopted verbatim,
        so sealing does zero transform work — this is what turns a
        flush from O(|database|) into O(|buffer|).
        """
        with span("segment.seal", series=len(series), segments=len(self.segments) + 1):
            segment = Segment(self._allocate_id(), series, grid, sets)
            self.segments.append(segment)
            self._bump()
        get_registry().counter(
            "sts3_segments_sealed_total", "buffer flushes sealed as new segments"
        ).inc()
        return segment

    def extend_last(self, series_item: np.ndarray) -> Segment:
        """Append one in-bound series to the newest segment (direct insert)."""
        if not self.segments:
            raise ParameterError("cannot extend an empty catalog")
        self.segments[-1] = self.segments[-1].extend(series_item)
        self._bump()
        return self.segments[-1]

    def adopt(self, series: list[np.ndarray], grid: Grid) -> Segment:
        """Append a segment with a *known* grid, re-transforming its series.

        Persistence uses this to reconstruct a catalog bit-identically:
        the archived grid is authoritative (re-deriving it from the
        series would tighten sealed segments' bounds and change
        similarities), only the derived sets are recomputed.
        """
        sets = [transform(s, grid) for s in series]
        count_transforms(len(series), "load")
        segment = Segment(self._allocate_id(), series, grid, sets)
        self.segments.append(segment)
        self._bump()
        return segment

    def adopt_lazy(
        self, grid: Grid, size: int, loader, payload_bytes: int = 0
    ) -> Segment:
        """Append a mapped segment whose payload loads on first touch.

        The zero-copy counterpart of :meth:`adopt`: the archived grid
        and manifest size are adopted now (enough for planning, offsets
        and ``len``), while series, sets, and transform accounting are
        deferred to :meth:`Segment._materialize` — an untouched segment
        costs no transforms and no resident payload bytes.
        """
        segment = Segment.lazy(
            self._allocate_id(), grid, size, loader, payload_bytes=payload_bytes
        )
        self.segments.append(segment)
        self._bump()
        return segment

    def compact(self, min_size: int | None = None) -> int:
        """Merge segments; returns how many segments were merged away.

        With ``min_size=None`` every segment merges into one (a full
        rebuild: new tight bound + ``value_padding``, every series
        re-transformed — bit-identical to constructing from scratch).
        Otherwise each maximal run of *consecutive* segments smaller
        than ``min_size`` is merged, which bounds catalog growth under
        sustained inserts while leaving big segments untouched.
        """
        if min_size is None:
            runs = [(0, len(self.segments))] if len(self.segments) > 1 else []
        else:
            if min_size < 1:
                raise ParameterError(f"min_size must be >= 1, got {min_size}")
            runs, start = [], None
            for i, seg in enumerate(self.segments):
                if len(seg) < min_size:
                    start = i if start is None else start
                    continue
                if start is not None and i - start > 1:
                    runs.append((start, i))
                start = None
            if start is not None and len(self.segments) - start > 1:
                runs.append((start, len(self.segments)))
        merged_away = 0
        for start, stop in reversed(runs):
            group = self.segments[start:stop]
            series = [s for seg in group for s in seg.series]
            with span("segment.compact", segments=len(group), series=len(series)):
                merged = Segment.build(
                    self._allocate_id(), series, self.sigma, self.epsilon,
                    value_padding=self.value_padding, context="compact",
                )
                self.segments[start:stop] = [merged]
            get_registry().counter(
                "sts3_rebuilds_total", "segment-merging rebuilds (compactions)"
            ).inc()
            merged_away += len(group) - 1
        if merged_away:
            self._bump()
        return merged_away

    def quarantine(self, record: QuarantineRecord) -> None:
        """Record a payload that failed verification during load.

        The catalog keeps serving the segments that did verify; the
        planner marks every query against it degraded
        (``degraded_reason="quarantine"``), and the
        ``sts3_quarantined_segments`` gauge makes the loss visible to
        operators before anyone notices missing neighbours.
        """
        self.quarantined.append(record)
        get_registry().gauge(
            "sts3_quarantined_segments",
            "archive payloads quarantined by checksum verification",
        ).set(len(self.quarantined))

    # -- diagnostics ----------------------------------------------------

    def covering_bound(self) -> Bound:
        """Smallest bound covering every segment's grid bound."""
        if not self.segments:
            raise ParameterError("cannot bound an empty catalog")
        bound = self.segments[0].grid.bound
        for seg in self.segments[1:]:
            bound = bound.union(seg.grid.bound)
        return bound

    def describe(self) -> list[dict]:
        """Per-segment stats rows, in global-index order."""
        rows = []
        for offset, seg in zip(self.offsets(), self.segments):
            row = seg.stats()
            row["offset"] = offset
            rows.append(row)
        return rows
