"""Degraded-mode querying: deadlines, quarantine, and the ladder.

The planner's degradation ladder (docs/durability.md) trades accuracy
for timeliness instead of raising: past half the deadline budget,
exact segment plans downgrade to approximate; past the budget,
remaining segments are skipped (the first always runs).  Quarantined
segments degrade the answer unconditionally.  All of it is surfaced on
the result (``complete`` / ``skipped_segments`` / ``degraded_reason``)
and in ``sts3_degraded_queries_total{reason}``.

Time is injected: ``planner.clock`` is swapped for a deterministic
tick iterator, so these tests never depend on machine speed.
"""

import numpy as np
import pytest

from repro import STS3Database
from repro.core import QuarantineRecord
from repro.core.planner import DEADLINE_SOFT_FRACTION, SMALL_SEGMENT
from repro.obs import get_registry

LENGTH = 48


def ticking_clock(step):
    """A fake monotonic clock advancing ``step`` seconds per call."""
    ticks = iter(np.arange(0.0, 10_000.0, step))
    return lambda: float(next(ticks))


@pytest.fixture
def db():
    """Three segments: one large (downgradeable) + two small deltas."""
    rng = np.random.default_rng(21)
    base = [rng.normal(size=LENGTH) for _ in range(SMALL_SEGMENT + 16)]
    database = STS3Database(base, sigma=2, epsilon=0.5, buffer_capacity=4)
    for _ in range(4):  # longer => out-of-bound => buffered => sealed
        database.insert(rng.normal(size=LENGTH + 8))
    for _ in range(4):  # longer still => out of the new bound too
        database.insert(rng.normal(size=LENGTH + 32))
    assert len(database.catalog.segments) == 3
    assert len(database.catalog.segments[0]) >= SMALL_SEGMENT
    return database


def query_for(db):
    rng = np.random.default_rng(77)
    return rng.normal(size=LENGTH)


class TestDeadlineLadder:
    def test_no_deadline_is_complete(self, db):
        result = db.query(query_for(db), k=5, method="index")
        assert result.complete is True
        assert result.skipped_segments == []
        assert result.degraded_reason is None

    def test_generous_deadline_is_complete(self, db):
        db.planner.clock = ticking_clock(0.0001)  # 0.1 ms per call
        result = db.query(query_for(db), k=5, method="index", deadline_ms=1000)
        assert result.complete is True
        assert result.degraded_reason is None

    def test_soft_deadline_downgrades_to_approximate(self, db):
        # 60 ms per clock call against a 100 ms budget: the big first
        # segment is already past the soft fraction when planned.
        assert DEADLINE_SOFT_FRACTION == 0.5
        db.planner.clock = ticking_clock(0.06)
        result = db.query(query_for(db), k=5, method="index", deadline_ms=100)
        assert result.complete is False
        assert result.degraded_reason == "deadline"
        assert db.planner.last_plans[0].method == "approximate"
        # degraded, not empty: an answer still comes back
        assert len(result.indices()) == 5

    def test_hard_deadline_skips_segments(self, db):
        db.planner.clock = ticking_clock(0.06)
        result = db.query(query_for(db), k=5, method="index", deadline_ms=100)
        # segments past the budget are skipped by name
        assert result.skipped_segments
        assert all(s.startswith("segment-") for s in result.skipped_segments)

    def test_first_segment_always_runs(self, db):
        # a clock so fast the budget is blown before segment 0: the
        # ladder still executes one segment rather than answering empty.
        db.planner.clock = ticking_clock(10.0)
        result = db.query(query_for(db), k=5, method="index", deadline_ms=1)
        assert result.complete is False
        assert len(result.indices()) == 5
        assert len(result.skipped_segments) == 2

    def test_small_segments_never_downgrade(self, db):
        db.planner.clock = ticking_clock(0.06)
        db.query(query_for(db), k=5, method="index", deadline_ms=100)
        for plan, segment in zip(
            db.planner.last_plans[1:], db.planner.catalog.segments[1:]
        ):
            if len(segment) < SMALL_SEGMENT:
                assert plan.method != "approximate" or plan is None

    def test_degradation_counted_by_reason(self, db):
        key = 'sts3_degraded_queries_total{reason="deadline"}'
        before = get_registry().snapshot()["counters"].get(key, 0)
        db.planner.clock = ticking_clock(0.06)
        db.query(query_for(db), k=5, method="index", deadline_ms=100)
        after = get_registry().snapshot()["counters"].get(key, 0)
        assert after == before + 1


class TestQuarantineDegradation:
    def test_quarantine_degrades_every_query(self, db):
        db.catalog.quarantine(QuarantineRecord("segment-9", 4, "checksum mismatch"))
        result = db.query(query_for(db), k=5, method="index")
        assert result.complete is False
        assert result.degraded_reason == "quarantine"
        assert result.skipped_segments == ["segment-9"]

    def test_quarantine_degrades_single_segment_db(self):
        """The fast single-segment passthrough must not hide the loss."""
        rng = np.random.default_rng(3)
        db = STS3Database(
            [rng.normal(size=LENGTH) for _ in range(12)], sigma=2, epsilon=0.5
        )
        db.catalog.quarantine(QuarantineRecord("segment-1", 7, "checksum mismatch"))
        result = db.query(rng.normal(size=LENGTH), k=3, method="index")
        assert result.complete is False
        assert result.degraded_reason == "quarantine"

    def test_quarantine_plus_deadline_reasons_combine(self, db):
        db.catalog.quarantine(QuarantineRecord("segment-9", 4, "checksum mismatch"))
        db.planner.clock = ticking_clock(0.06)
        result = db.query(query_for(db), k=5, method="index", deadline_ms=100)
        assert result.complete is False
        assert result.degraded_reason == "deadline+quarantine"
        assert "segment-9" in result.skipped_segments

    def test_quarantine_degrades_batch_queries(self, db):
        db.catalog.quarantine(QuarantineRecord("segment-9", 4, "checksum mismatch"))
        rng = np.random.default_rng(13)
        results = db.query_batch(
            [rng.normal(size=LENGTH) for _ in range(3)], k=3, method="index"
        )
        assert len(results) == 3
        for result in results:
            assert result.complete is False
            assert result.degraded_reason == "quarantine"


class TestBatchDeadline:
    def test_deadline_forces_scalar_path_and_degrades(self, db):
        db.planner.clock = ticking_clock(0.06)
        rng = np.random.default_rng(14)
        results = db.query_batch(
            [rng.normal(size=LENGTH) for _ in range(3)],
            k=3,
            method="index",
            deadline_ms=100,
        )
        assert len(results) == 3
        assert any(r.complete is False for r in results)
        for result in results:
            assert len(result.indices()) == 3  # never empty

    def test_batch_without_deadline_unchanged(self, db):
        rng = np.random.default_rng(15)
        queries = [rng.normal(size=LENGTH) for _ in range(3)]
        batch = db.query_batch(queries, k=3, method="index")
        for q, result in zip(queries, batch):
            scalar = db.query(q, k=3, method="index")
            assert result.indices() == scalar.indices()
            assert result.similarities() == scalar.similarities()
            assert result.complete is True
