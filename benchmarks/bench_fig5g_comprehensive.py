"""Figure 5(g-h): comprehensive comparison of the three STS3 variants.

Paper Section 7.4.6: on ChlorineConcentration (CC, short series),
NonInvasiveFatalECG_Thorax1 (NIFE, long series) and ElectricDevices
(ED, large database), runtime and 1-NN classification error of the
index-based, pruning-based, and approximate STS3 are compared with
``scale=6`` and ``maxScale=4``.  Expected shapes: pruning leads on CC,
approximate on NIFE, index on ED; the approximate variant's accuracy is
only slightly worse than the exact ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Timer, render_table, repro_scale
from repro.core import STS3Database
from repro.data.registry import load_dataset

#: (dataset, paper's (sigma, epsilon) from Table 7)
CASES = [("CC", 1, 0.28), ("NIFE", 7, 0.14), ("ED", 4, 0.88)]
METHODS = ["index", "pruning", "approximate"]
SCALE_PARAM = 6
MAX_SCALE_PARAM = 4


@pytest.fixture(scope="module")
def experiment(report):
    scale = min(repro_scale(), 0.1)
    runtime_rows = []
    error_rows = []
    prepared = {}
    for name, sigma, epsilon in CASES:
        ds = load_dataset(name, scale=scale, seed=0)
        # Larger sub-dataset is the database, smaller the query set.
        if len(ds.train) >= len(ds.test):
            db_part, q_part = ds.train, ds.test
        else:
            db_part, q_part = ds.test, ds.train
        db = STS3Database(
            list(db_part.series),
            sigma=sigma,
            epsilon=epsilon,
            default_scale=SCALE_PARAM,
            default_max_scale=MAX_SCALE_PARAM,
        )
        db.indexed_searcher()
        db.pruning_searcher()
        db.approximate_searcher()

        runtime_row: list[object] = [name]
        error_row: list[object] = [name]
        for method in METHODS:
            wrong = 0
            with Timer() as t:
                for series, label in q_part:
                    result = db.query(series, k=1, method=method)
                    if int(db_part.labels[result.best.index]) != label:
                        wrong += 1
            runtime_row.append(t.millis)
            error_row.append(wrong / len(q_part))
        runtime_rows.append(runtime_row)
        error_rows.append(error_row)
        prepared[name] = (db, q_part)
    report(
        "fig5g_runtime",
        render_table(
            ["Dataset"] + [f"{m} ms" for m in METHODS],
            runtime_rows,
            title=f"Figure 5(g): runtime of the three STS3s (scale={scale})",
        ),
    )
    report(
        "fig5h_error",
        render_table(
            ["Dataset"] + METHODS,
            error_rows,
            title=f"Figure 5(h): 1-NN error of the three STS3s (scale={scale})",
        ),
    )
    # Shape: the approximate variant's error is close to the exact ones.
    for row in error_rows:
        exact_err = float(row[1])
        approx_err = float(row[3])
        assert approx_err <= exact_err + 0.25
    return prepared


@pytest.mark.parametrize("name", [c[0] for c in CASES])
@pytest.mark.parametrize("method", METHODS)
def test_bench_variant(benchmark, experiment, name, method):
    db, q_part = experiment[name]
    query = q_part.series[0]
    benchmark(lambda: db.query(query, k=1, method=method))
