"""Workload scaling and traced runs for the benchmark suite.

The paper's workloads (20,000 ECG windows, 8,926 ElectricDevices
series, ...) are too large for a quick CI run, so every benchmark
multiplies its instance counts by ``REPRO_SCALE`` (default 0.05).
``REPRO_SCALE=1`` reproduces the paper-size workloads; intermediate
values trade fidelity for time.  Lengths, class counts, and parameter
ranges are never scaled — only how many series/queries are used.

:func:`run_traced` runs a callable under a fresh
:class:`repro.obs.Tracer` and returns its per-stage wall-clock
breakdown, so benchmark JSON records gain ``filter`` / ``refine`` /
``select_topk`` timings alongside end-to-end numbers (the Lernaean
Hydra per-phase reporting convention).
"""

from __future__ import annotations

import os
from typing import Callable

__all__ = ["repro_scale", "run_traced", "scaled"]


def run_traced(fn: Callable[[], object]) -> tuple[object, dict[str, float]]:
    """Run ``fn()`` under a fresh tracer; return ``(result, stage_seconds)``.

    ``stage_seconds`` maps span names to total seconds (see
    ``docs/observability.md`` for the naming scheme).  The previous
    tracer is restored even when ``fn`` raises.
    """
    from ..obs import Tracer, use_tracer

    with use_tracer(Tracer()) as tracer:
        result = fn()
    return result, tracer.stage_seconds()

#: environment variable controlling workload sizes across benchmarks.
SCALE_ENV = "REPRO_SCALE"

#: default: 5% of paper-size workloads, a few minutes for the suite.
DEFAULT_SCALE = 0.05


def repro_scale() -> float:
    """Current workload scale factor from ``$REPRO_SCALE``."""
    raw = os.environ.get(SCALE_ENV)
    if raw is None:
        return DEFAULT_SCALE
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"${SCALE_ENV} must be a number, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"${SCALE_ENV} must be positive, got {value}")
    return value


def scaled(count: int, minimum: int = 1, scale: float | None = None) -> int:
    """``count`` series at the current scale, at least ``minimum``."""
    factor = repro_scale() if scale is None else scale
    return max(minimum, round(count * factor))
