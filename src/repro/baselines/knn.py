"""Generic distance-based k-NN search and 1-NN classification.

All baseline measures plug into the same scan: a *measure* is a
callable ``measure(a, b, cutoff) -> float`` returning a distance, where
implementations may use ``cutoff`` for early abandoning (returning any
value > cutoff, conventionally ``inf``, when the true distance provably
exceeds it) or ignore it.  Adapters for every baseline are provided so
benchmarks and examples can write ``measures.dtw(window=10)``.

The classifier implements the paper's accuracy protocol (Section
7.2.2): each TEST series takes the label of its nearest TRAIN series,
and the error rate is the fraction misclassified.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol

import numpy as np

from ..exceptions import EmptyDatabaseError, ParameterError
from ..types import LabeledDataset
from .dtw import dtw
from .ed import euclidean_early_abandon
from .fastdtw import fastdtw
from .ftse import ftse_lcss_distance
from .lcss import lcss_distance

__all__ = [
    "Measure",
    "measures",
    "knn_search",
    "nn_classify",
    "knn_classify",
    "error_rate",
]


class Measure(Protocol):
    """Distance with optional early abandoning against ``cutoff``."""

    def __call__(self, a: np.ndarray, b: np.ndarray, cutoff: float) -> float: ...


class measures:
    """Factory namespace for the baseline measures the paper compares."""

    @staticmethod
    def ed() -> Measure:
        """Euclidean distance with early abandoning."""
        return lambda a, b, cutoff: euclidean_early_abandon(a, b, cutoff)

    @staticmethod
    def dtw(window: int | None = None) -> Measure:
        """(Banded) DTW with early abandoning."""
        return lambda a, b, cutoff: dtw(a, b, window=window, cutoff=cutoff)

    @staticmethod
    def fast_dtw(radius: int = 0) -> Measure:
        """FastDTW; cannot abandon early (multi-level filtering)."""
        return lambda a, b, cutoff: fastdtw(a, b, radius=radius)[0]

    @staticmethod
    def lcss(epsilon: float = 0.5, delta_fraction: float = 0.1) -> Measure:
        """LCSS distance; warping window as a fraction of the length."""

        def measure(a: np.ndarray, b: np.ndarray, cutoff: float) -> float:
            delta = max(1, int(round(delta_fraction * min(len(a), len(b)))))
            return lcss_distance(a, b, epsilon, delta)

        return measure

    @staticmethod
    def ftse(epsilon: float = 0.5, delta_fraction: float = 0.1) -> Measure:
        """LCSS distance via the FTSE grid evaluation."""

        def measure(a: np.ndarray, b: np.ndarray, cutoff: float) -> float:
            delta = max(1, int(round(delta_fraction * min(len(a), len(b)))))
            return ftse_lcss_distance(a, b, epsilon, delta)

        return measure


def knn_search(
    database: list[np.ndarray],
    query: np.ndarray,
    measure: Measure,
    k: int = 1,
    early_stop: bool = True,
) -> list[tuple[int, float]]:
    """Exact k-NN scan; returns ``(index, distance)`` best-first.

    With ``early_stop`` the current k-th best distance is passed as the
    measure's cutoff (the paper's early-stopping strategy; disabled for
    FastDTW in the benchmarks since it "cannot be stopped early").
    """
    if not database:
        raise EmptyDatabaseError("cannot search an empty database")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    k = min(k, len(database))
    # Max-heap of (-distance, -index): top is the worst of the k best.
    heap: list[tuple[float, int]] = []
    for index, candidate in enumerate(database):
        cutoff = -heap[0][0] if early_stop and len(heap) >= k else float("inf")
        distance = measure(query, candidate, cutoff)
        if len(heap) < k:
            heapq.heappush(heap, (-distance, -index))
        elif distance < -heap[0][0]:
            heapq.heapreplace(heap, (-distance, -index))
    ordered = sorted(((-d, -i) for d, i in heap), key=lambda t: (t[0], t[1]))
    return [(i, d) for d, i in ordered]


def nn_classify(
    train: LabeledDataset,
    query: np.ndarray,
    measure: Measure,
    early_stop: bool = True,
) -> int:
    """Predicted label of ``query``: the label of its 1-NN in ``train``."""
    (index, _distance), = knn_search(
        list(train.series), query, measure, k=1, early_stop=early_stop
    )
    return int(train.labels[index])


def knn_classify(
    train: LabeledDataset,
    query: np.ndarray,
    measure: Measure,
    k: int = 3,
    early_stop: bool = True,
) -> int:
    """Majority vote over the ``k`` nearest training series.

    Ties are broken toward the label whose closest supporting
    neighbour is nearest (the usual distance-weighted tie-break),
    which also makes ``k=1`` coincide with :func:`nn_classify`.
    """
    neighbors = knn_search(
        list(train.series), query, measure, k=k, early_stop=early_stop
    )
    votes: dict[int, int] = {}
    closest: dict[int, float] = {}
    for index, distance in neighbors:
        label = int(train.labels[index])
        votes[label] = votes.get(label, 0) + 1
        closest.setdefault(label, distance)
    return max(votes, key=lambda label: (votes[label], -closest[label]))


def error_rate(
    train: LabeledDataset,
    test: LabeledDataset,
    measure: Measure,
    early_stop: bool = True,
) -> float:
    """1-NN classification error rate of ``measure`` (Section 7.2.2)."""
    wrong = sum(
        1
        for series, label in test
        if nn_classify(train, series, measure, early_stop) != label
    )
    return wrong / len(test)
