"""Crash-recovery suite: kill the database at every injection point.

The durability contract (docs/durability.md):

1. **No acknowledged write is lost.**  A write is acknowledged once its
   WAL record is fsynced (``seq <= wal.synced_seq``).  These tests run
   with ``fsync_batch=1`` so every applied insert is acknowledged, then
   crash at each injection point and assert the recovered database
   contains every acknowledged insert.
2. **Recovery is bit-identical.**  The recovered database's k-NN
   answers (indices *and* similarities) equal those of an uninterrupted
   twin built over the same writes.
3. **Corruption is quarantined, not raised.**  A checksum-corrupt
   segment payload degrades queries (``complete=False``) instead of
   tracebacking.

Faults come from :mod:`repro.faults` — seeded, deterministic, no wall
clock — so every scenario replays identically under ``pytest -p
no:randomly`` and in CI's dedicated crash-recovery job.
"""

import numpy as np
import pytest

from repro import STS3Database, faults
from repro.core import (
    WriteAheadLog,
    default_wal_dir,
    load_database,
    recover_database,
    save_database,
    verify_archive,
)
from repro.core import persistence
from repro.exceptions import DatasetError
from repro.faults import Fault, FaultPlan, SimulatedCrash
from repro.obs import get_registry

LENGTH = 40
N_BASE = 20


def base_series():
    rng = np.random.default_rng(7)
    return [rng.normal(size=LENGTH) for _ in range(N_BASE)]


def insert_series(n):
    """Deterministic out-of-bound inserts (longer => new time bound)."""
    rng = np.random.default_rng(1234)
    return [rng.normal(size=LENGTH + 8) for _ in range(n)]


def queries(n=4):
    rng = np.random.default_rng(99)
    return [rng.normal(size=LENGTH) for _ in range(n)]


def make_checkpointed_db(path, fsync_batch=1, buffer_capacity=4):
    db = STS3Database(
        base_series(), sigma=2, epsilon=0.5, buffer_capacity=buffer_capacity
    )
    db.attach_wal(WriteAheadLog(default_wal_dir(path), fsync_batch=fsync_batch))
    save_database(db, path)
    return db


def oracle_db(n_inserts, buffer_capacity=4):
    """An uninterrupted twin: base + the first ``n_inserts`` inserts."""
    db = STS3Database(
        base_series(), sigma=2, epsilon=0.5, buffer_capacity=buffer_capacity
    )
    for series in insert_series(n_inserts)[:n_inserts]:
        db.insert(series)
    return db


def assert_bit_identical(got_db, want_db, k=5):
    assert len(got_db) == len(want_db)
    for q in queries():
        got = got_db.query(q, k=k, method="index")
        want = want_db.query(q, k=k, method="index")
        assert got.indices() == want.indices()
        assert got.similarities() == want.similarities()


class TestWalCrashes:
    """Crashes on the insert path: the WAL append/fsync machinery."""

    @pytest.mark.parametrize("kind", ["crash", "torn"])
    @pytest.mark.parametrize("hit", [1, 3, 6])
    def test_crash_at_wal_append(self, tmp_path, kind, hit):
        path = tmp_path / "db.sts3"
        db = make_checkpointed_db(path)
        applied = 0
        with faults.inject(FaultPlan([Fault("wal.append", kind, hit=hit)], seed=hit)):
            with pytest.raises(SimulatedCrash):
                for series in insert_series(8):
                    db.insert(series)
                    applied += 1
        # the dying insert was never applied nor acknowledged (hit and
        # insert counts diverge past the buffer boundary because the
        # auto-flush record consumes a wal.append hit too)
        assert applied < 8
        recovered = recover_database(path)
        assert_bit_identical(recovered, oracle_db(applied))
        recovered.close()

    @pytest.mark.parametrize("hit", [1, 4])
    def test_crash_at_wal_fsync(self, tmp_path, hit):
        path = tmp_path / "db.sts3"
        db = make_checkpointed_db(path)
        applied = 0
        with faults.inject(FaultPlan([Fault("wal.sync", "crash", hit=hit)], seed=1)):
            with pytest.raises(SimulatedCrash):
                for series in insert_series(8):
                    db.insert(series)
                    applied += 1
        # the record reached the OS before the fsync died, so recovery
        # may legitimately include it — the contract is only that no
        # *acknowledged* (applied == acked at batch=1) write is lost.
        recovered = recover_database(path)
        n_recovered = len(recovered) - N_BASE
        assert n_recovered >= applied
        assert_bit_identical(recovered, oracle_db(n_recovered))
        recovered.close()

    def test_bitflip_in_wal_record_truncates_tail(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = make_checkpointed_db(path)
        with faults.inject(
            FaultPlan([Fault("wal.append", "bitflip", hit=3)], seed=5)
        ):
            for series in insert_series(5):
                db.insert(series)
        db.wal.sync()
        # silent corruption: the live process noticed nothing, but
        # replay stops at the bad CRC and keeps the intact prefix.
        recovered = recover_database(path)
        assert len(recovered) - N_BASE == 2
        assert_bit_identical(recovered, oracle_db(2))
        recovered.close()

    def test_enospc_on_wal_append_loses_nothing_applied(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = make_checkpointed_db(path)
        with faults.inject(
            FaultPlan([Fault("wal.append", "enospc", hit=2)], seed=2)
        ):
            db.insert(insert_series(2)[0])
            with pytest.raises(OSError):
                db.insert(insert_series(2)[1])
        recovered = recover_database(path)
        assert_bit_identical(recovered, oracle_db(1))
        recovered.close()

    def test_crash_spanning_flush_and_rotation(self, tmp_path):
        """Inserts that seal a segment (flush record + rotation) recover."""
        path = tmp_path / "db.sts3"
        db = make_checkpointed_db(path, buffer_capacity=3)
        n = 7  # crosses two auto-flush boundaries at capacity 3
        for series in insert_series(n):
            db.insert(series)
        expected_segments = len(db.catalog.segments)
        # crash without closing the WAL
        recovered = recover_database(path)
        assert len(recovered.catalog.segments) == expected_segments
        assert_bit_identical(recovered, oracle_db(n, buffer_capacity=3))
        recovered.close()

    def test_recovered_database_keeps_journaling(self, tmp_path):
        """Post-recovery writes are themselves durable (WAL re-attached)."""
        path = tmp_path / "db.sts3"
        db = make_checkpointed_db(path)
        db.insert(insert_series(1)[0])
        first = recover_database(path)
        assert first.wal is not None
        for series in insert_series(4)[1:4]:
            first.insert(series)
        # crash again, recover again: both generations of writes survive
        second = recover_database(path)
        assert_bit_identical(second, oracle_db(4))
        second.close()


class TestArchiveCrashes:
    """Crashes during save_database: atomicity of the v4 container."""

    @pytest.mark.parametrize(
        "point, kind",
        [
            ("persist.payload.write", "crash"),
            ("persist.payload.write", "torn"),
            ("persist.manifest.write", "torn"),
            ("persist.sync", "crash"),
            ("persist.rename", "crash"),
        ],
    )
    def test_interrupted_save_preserves_old_archive(self, tmp_path, point, kind):
        path = tmp_path / "db.sts3"
        db = make_checkpointed_db(path)
        for series in insert_series(6):
            db.insert(series)
        db.wal.sync()
        with faults.inject(FaultPlan([Fault(point, kind)], seed=3)):
            with pytest.raises(SimulatedCrash):
                save_database(db, path)
        assert not path.with_name(path.name + ".tmp").exists()
        # the old checkpoint plus the intact WAL reconstruct everything
        recovered = recover_database(path)
        assert_bit_identical(recovered, db)
        recovered.close()

    def test_interrupted_legacy_save_preserves_old_archive(self, tmp_path):
        path = tmp_path / "db.npz"
        db = STS3Database(base_series(), sigma=2, epsilon=0.5)
        save_database(db, path, format_version=3)
        with faults.inject(
            FaultPlan([Fault("persist.payload.write", "torn")], seed=4)
        ):
            with pytest.raises(SimulatedCrash):
                save_database(db, path, format_version=3)
        assert_bit_identical(load_database(path), db)

    def test_enospc_during_save_is_retried(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = STS3Database(base_series(), sigma=2, epsilon=0.5)
        key = 'sts3_io_retries_total{op="save"}'
        before = get_registry().snapshot()["counters"].get(key, 0)
        with faults.inject(
            FaultPlan([Fault("persist.payload.write", "enospc")], seed=6)
        ) as plan:
            save_database(db, path)
        assert plan.triggered  # the fault really fired
        after = get_registry().snapshot()["counters"].get(key, 0)
        assert after == before + 1
        assert_bit_identical(load_database(path), db)

    def test_save_checkpoint_retires_wal(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = make_checkpointed_db(path)
        for series in insert_series(5):
            db.insert(series)
        save_database(db, path)
        report = verify_archive(path)
        assert report["wal"]["replay_lag"] == 0
        recovered = recover_database(path)
        assert_bit_identical(recovered, db)
        recovered.close()


class TestQuarantine:
    """Checksum corruption: quarantined, degraded, never a traceback."""

    def _multi_segment_db(self, buffer_capacity=4):
        db = STS3Database(
            base_series(), sigma=2, epsilon=0.5, buffer_capacity=buffer_capacity
        )
        for series in insert_series(8):
            db.insert(series)
        assert len(db.catalog.segments) >= 2
        return db

    @pytest.mark.parametrize("hit", [1, 2])
    def test_bitflipped_payload_quarantined(self, tmp_path, hit):
        path = tmp_path / "db.sts3"
        db = self._multi_segment_db()
        with faults.inject(
            FaultPlan([Fault("persist.payload.write", "bitflip", hit=hit)], seed=8)
        ):
            save_database(db, path)
        loaded = load_database(path)  # no exception
        assert [q.name for q in loaded.catalog.quarantined] == [
            f"segment-{hit - 1}"
        ]
        assert loaded.catalog.quarantined[0].reason == "checksum mismatch"
        result = loaded.query(queries(1)[0], k=3, method="index")
        assert result.complete is False
        assert result.degraded_reason == "quarantine"
        assert result.skipped_segments == [f"segment-{hit - 1}"]

    def test_quarantine_visible_in_metrics(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = self._multi_segment_db()
        with faults.inject(
            FaultPlan([Fault("persist.payload.write", "bitflip")], seed=9)
        ):
            save_database(db, path)
        loaded = load_database(path)
        snap = get_registry().snapshot()
        assert snap["gauges"]["sts3_quarantined_segments"] == 1.0
        degraded_key = 'sts3_degraded_queries_total{reason="quarantine"}'
        before = snap["counters"].get(degraded_key, 0)
        loaded.query(queries(1)[0], k=3, method="index")
        after = get_registry().snapshot()["counters"].get(degraded_key, 0)
        assert after == before + 1

    def test_batch_queries_degrade_too(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = self._multi_segment_db()
        with faults.inject(
            FaultPlan([Fault("persist.payload.write", "bitflip")], seed=10)
        ):
            save_database(db, path)
        loaded = load_database(path)
        results = loaded.query_batch(queries(3), k=3, method="index")
        assert all(r.complete is False for r in results)
        assert all(r.degraded_reason == "quarantine" for r in results)

    def test_all_segments_corrupt_raises_cleanly(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = STS3Database(base_series(), sigma=2, epsilon=0.5)
        with faults.inject(
            FaultPlan(
                [Fault("persist.payload.write", "bitflip", repeat=True)], seed=11
            )
        ):
            save_database(db, path)
        with pytest.raises(DatasetError, match="failed verification"):
            load_database(path)

    def test_verify_archive_reports_corruption(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = self._multi_segment_db()
        with faults.inject(
            FaultPlan([Fault("persist.payload.write", "bitflip", hit=2)], seed=12)
        ):
            save_database(db, path)
        report = verify_archive(path)
        statuses = {p["name"]: p["status"] for p in report["payloads"]}
        assert statuses["segment-0"] == "ok"
        assert statuses["segment-1"] == "checksum mismatch"
        assert report["problems"]

    def test_truncated_trailer_is_dataset_error(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = STS3Database(base_series(), sigma=2, epsilon=0.5)
        save_database(db, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        with pytest.raises(DatasetError):
            load_database(path)


class TestRetryBackoff:
    def test_backoff_is_seeded_jittered_capped(self):
        calls = []

        plan = FaultPlan(
            [Fault("persist.read", "enospc", hit=1),
             Fault("persist.read", "enospc", hit=2),
             Fault("persist.read", "enospc", hit=3)],
            seed=0,
        )
        with faults.inject(plan):
            persistence._retry_rng.seed(42)

            def flaky():
                faults.fault_point("persist.read")
                return "ok"

            assert persistence._with_retries("save", flaky) == "ok"
        # three sleeps on the virtual clock, exponentially growing,
        # each at most the cap
        assert plan.time() > 0
        assert plan.time() <= 3 * persistence.RETRY_MAX_DELAY * 1.5

    def test_retries_exhausted_reraises(self):
        plan = FaultPlan(
            [Fault("persist.read", "enospc", repeat=True)], seed=0
        )
        with faults.inject(plan):
            def always_fails():
                faults.fault_point("persist.read")

            with pytest.raises(OSError):
                persistence._with_retries("save", always_fails)

    def test_simulated_crash_is_never_retried(self):
        plan = FaultPlan([Fault("persist.read", "crash", hit=1)], seed=0)
        with faults.inject(plan):
            def crashes():
                faults.fault_point("persist.read")

            with pytest.raises(SimulatedCrash):
                persistence._with_retries("save", crashes)
        # exactly one attempt: the crash propagated immediately
        assert plan.hits["persist.read"] == 1
