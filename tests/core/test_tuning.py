"""Tests for parameter tuning (Section 6.3, Table 5)."""

import numpy as np
import pytest

from repro import STS3Database
from repro.core.tuning import (
    default_epsilon_grid,
    default_sigma_grid,
    sts3_error_rate,
    tune_max_scale,
    tune_scale,
    tune_sigma_epsilon,
)
from repro.data.ucr_like import smooth_outlines
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def dataset():
    return smooth_outlines(
        n_classes=3, n_train_per_class=8, n_test_per_class=6, length=64, seed=5
    )


class TestDefaultGrids:
    def test_sigma_range(self):
        grid = default_sigma_grid(100)
        assert grid[0] == 1
        assert grid[-1] == 30  # 0.3 * n
        assert len(grid) <= 10

    def test_sigma_full_grid(self):
        grid = default_sigma_grid(40, max_points=None)
        assert grid == list(range(1, 13))

    def test_sigma_short_series(self):
        assert default_sigma_grid(5) == [1]

    def test_epsilon_range(self):
        grid = default_epsilon_grid()
        assert grid[0] == pytest.approx(0.02)
        assert grid[-1] == pytest.approx(1.0)

    def test_epsilon_full_grid(self):
        grid = default_epsilon_grid(max_points=None)
        assert len(grid) == 50
        assert grid[0] == 0.02 and grid[-1] == 1.0


class TestErrorRate:
    def test_perfect_on_identical_sets(self, dataset):
        err = sts3_error_rate(dataset.train, dataset.train, sigma=2, epsilon=0.2)
        assert err == 0.0  # each series is its own nearest neighbour

    def test_reasonable_on_easy_data(self, dataset):
        err = sts3_error_rate(dataset.train, dataset.test, sigma=2, epsilon=0.2)
        assert err < 0.5

    def test_in_unit_interval(self, dataset):
        err = sts3_error_rate(dataset.train, dataset.test, sigma=4, epsilon=0.9)
        assert 0.0 <= err <= 1.0


class TestTuneSigmaEpsilon:
    def test_returns_best_of_table(self, dataset):
        result = tune_sigma_epsilon(
            dataset.train, sigma_grid=[1, 4], epsilon_grid=[0.1, 0.5], seed=0
        )
        assert len(result.table) == 4
        assert result.error == min(result.table.values())
        assert (result.sigma, result.epsilon) in result.table

    def test_error_curves(self, dataset):
        result = tune_sigma_epsilon(
            dataset.train, sigma_grid=[1, 2, 4], epsilon_grid=[0.1, 0.5], seed=0
        )
        sigma_curve = result.error_curve("sigma")
        assert [s for s, _ in sigma_curve] == [1, 2, 4]
        epsilon_curve = result.error_curve("epsilon")
        assert [e for e, _ in epsilon_curve] == [0.1, 0.5]
        with pytest.raises(ParameterError):
            result.error_curve("nope")

    def test_too_small_train_raises(self, dataset):
        from repro.types import LabeledDataset

        tiny = LabeledDataset([dataset.train.series[0]], np.array([0]))
        with pytest.raises(ParameterError):
            tune_sigma_epsilon(tiny)


class TestTuneScales:
    @pytest.fixture(scope="class")
    def db_and_queries(self):
        rng = np.random.default_rng(2)
        series = [rng.normal(size=64) for _ in range(60)]
        queries = [rng.normal(size=64) for _ in range(4)]
        return STS3Database(series, sigma=2, epsilon=0.4), queries

    def test_tune_scale(self, db_and_queries):
        db, queries = db_and_queries
        result = tune_scale(db, queries, scales=[2, 4], k=1)
        assert result.best in (2, 4)
        assert set(result.curve) == {2, 4}
        assert result.speedup == result.curve[result.best]

    def test_tune_max_scale(self, db_and_queries):
        db, queries = db_and_queries
        result = tune_max_scale(db, queries, max_scales=[2, 3], k=1)
        assert result.best in (2, 3)
        assert all(v > 0 for v in result.curve.values())

    def test_default_scale_candidates(self, db_and_queries):
        db, queries = db_and_queries
        result = tune_scale(db, queries[:1], k=1)
        assert all(2 <= s <= 8 for s in result.curve)  # sqrt(64) = 8
