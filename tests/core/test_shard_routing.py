"""Consistent-hash routing is deterministic, total, and stable.

The sharded engine's correctness rests on placement being a pure
function of ``(series_id, seed, n_shards, vnodes)`` — no process salt,
no platform dependence — because a reopened archive must route every
id to the shard that owns its series.  These tests pin the hash with
golden values (so an accidental algorithm change cannot slip through
as "still deterministic, just different") and property-test the ring
with hypothesis; none of them spawn worker processes.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shard import (
    DEFAULT_HASH_SEED,
    DEFAULT_VNODES,
    HashRing,
    ShardedDatabase,
    _ShardIdTable,
    _splitmix64,
)
from repro.exceptions import ParameterError

# Golden values computed once at PR time.  If these ever fail, the
# routing function changed and every existing sharded archive on disk
# would open with series routed to the wrong shards.
GOLDEN_SPLITMIX = {
    0: 16294208416658607535,
    1: 10451216379200822465,
    0x5753: 782144441068483865,
}
GOLDEN_OWNERS_4 = [1, 2, 2, 2, 2, 3, 3, 0, 3, 0, 3, 3]
GOLDEN_OWNERS_3_SEED99_V8 = [0, 1, 2, 0, 2, 0, 1, 2]


def test_splitmix_golden_values():
    for value, expected in GOLDEN_SPLITMIX.items():
        assert _splitmix64(value) == expected


def test_ring_golden_placements():
    ring = HashRing(4)
    assert [ring.owner(i) for i in range(12)] == GOLDEN_OWNERS_4
    ring = HashRing(3, seed=99, vnodes=8)
    assert [ring.owner(i) for i in range(8)] == GOLDEN_OWNERS_3_SEED99_V8


def test_ring_rejects_bad_parameters():
    with pytest.raises(ParameterError):
        HashRing(0)
    with pytest.raises(ParameterError):
        HashRing(2, vnodes=0)


@given(
    n_shards=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=2**64 - 1),
    ids=st.lists(st.integers(min_value=0, max_value=2**63), max_size=50),
)
@settings(max_examples=50)
def test_every_id_owned_by_exactly_one_shard(n_shards, seed, ids):
    """Placement is total, in-range, and identical across ring rebuilds."""
    ring = HashRing(n_shards, seed=seed)
    rebuilt = HashRing(n_shards, seed=seed)
    for series_id in ids:
        owner = ring.owner(series_id)
        assert 0 <= owner < n_shards
        assert rebuilt.owner(series_id) == owner  # no per-instance state


@given(
    n_shards=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32),
    n_ids=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=50)
def test_partition_is_a_disjoint_cover(n_shards, seed, n_ids):
    ring = HashRing(n_shards, seed=seed)
    parts = ring.partition(range(n_ids))
    assert len(parts) == n_shards
    flat = [i for part in parts for i in part]
    assert sorted(flat) == list(range(n_ids))  # cover, no duplicates
    for shard_id, part in enumerate(parts):
        assert all(ring.owner(i) == shard_id for i in part)


@given(seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=20)
def test_vnode_count_shifts_placement_deterministically(seed):
    """Different vnode counts are different (but internally stable) rings."""
    a = HashRing(4, seed=seed, vnodes=16)
    b = HashRing(4, seed=seed, vnodes=16)
    assert [a.owner(i) for i in range(64)] == [b.owner(i) for i in range(64)]


def test_manifest_round_trip_preserves_ownership(tmp_path):
    """A manifest written and re-read rebuilds the identical ring."""
    manifest = {
        "format": "sts3-sharded",
        "version": 1,
        "shards": 5,
        "hash_seed": 1234,
        "vnodes": DEFAULT_VNODES,
        "series_total": 100,
        "next_id": 100,
        "files": [ShardedDatabase.shard_file(i) for i in range(5)],
        "params": {},
    }
    ShardedDatabase._write_manifest(tmp_path, manifest)
    loaded = ShardedDatabase.read_manifest(tmp_path)
    before = HashRing(manifest["shards"], manifest["hash_seed"],
                      manifest["vnodes"])
    after = HashRing(loaded["shards"], loaded["hash_seed"], loaded["vnodes"])
    assert [before.owner(i) for i in range(200)] == [
        after.owner(i) for i in range(200)
    ]


def test_read_manifest_rejects_foreign_json(tmp_path):
    (tmp_path / "shard-manifest.json").write_text(json.dumps({"format": "x"}))
    with pytest.raises(Exception):
        ShardedDatabase.read_manifest(tmp_path)


def test_default_seed_is_pinned():
    # The seed is part of the on-disk contract: changing the default
    # would strand archives whose manifest omitted it (none do, but the
    # constant is load-bearing documentation).
    assert DEFAULT_HASH_SEED == 0x5753


class TestShardIdTable:
    def test_direct_and_buffered_ordering(self):
        table = _ShardIdTable()
        table.insert(10, "direct", False)
        table.insert(11, "buffered", False)
        table.insert(12, "direct", False)  # direct lands BEFORE the buffer
        assert [table.global_id(i) for i in range(3)] == [10, 12, 11]

    def test_seal_moves_buffer_to_stored_tail(self):
        table = _ShardIdTable()
        table.insert(1, "direct", False)
        table.insert(2, "buffered", False)
        table.insert(3, "buffered", True)  # sealing insert
        assert table.stored == [1, 2, 3]
        assert table.buffered == []

    def test_extras_round_trip(self):
        table = _ShardIdTable([4, 5], [9])
        restored = _ShardIdTable.from_extras(table.to_extras())
        assert restored.stored == [4, 5]
        assert restored.buffered == [9]
        assert len(restored) == 3
        assert restored.max_id() == 9

    def test_empty_table(self):
        table = _ShardIdTable()
        assert len(table) == 0
        assert table.max_id() == -1
        assert table.all_ids() == []
