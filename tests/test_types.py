"""Tests for the shared container types."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.types import (
    ClassificationDataset,
    LabeledDataset,
    Workload,
    as_series,
    series_dim,
    series_length,
)


class TestAsSeries:
    def test_coerces_list(self):
        out = as_series([1, 2, 3])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_accepts_2d(self):
        assert as_series(np.zeros((4, 2))).shape == (4, 2)

    def test_rejects_3d(self):
        with pytest.raises(DatasetError):
            as_series(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            as_series([])

    def test_rejects_nan(self):
        with pytest.raises(DatasetError):
            as_series([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(DatasetError):
            as_series([1.0, float("inf")])


class TestSeriesHelpers:
    def test_length(self):
        assert series_length(np.zeros(7)) == 7
        assert series_length(np.zeros((7, 3))) == 7

    def test_dim(self):
        assert series_dim(np.zeros(7)) == 1
        assert series_dim(np.zeros((7, 3))) == 3


def _labeled(n_per_class=4, n_classes=3, length=16, seed=0):
    rng = np.random.default_rng(seed)
    series = [rng.normal(size=length) for _ in range(n_per_class * n_classes)]
    labels = np.repeat(np.arange(n_classes), n_per_class)
    return LabeledDataset(series=series, labels=labels, name="x")


class TestLabeledDataset:
    def test_len_and_iter(self):
        ds = _labeled()
        assert len(ds) == 12
        seen = [label for _, label in ds]
        assert len(seen) == 12

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DatasetError):
            LabeledDataset(series=[np.zeros(3)], labels=np.array([1, 2]))

    def test_n_classes(self):
        assert _labeled(n_classes=3).n_classes == 3

    def test_split_half_balanced(self):
        ds = _labeled(n_per_class=4, n_classes=3)
        a, b = ds.split_half(seed=1)
        assert len(a) == len(b) == 6
        for label in range(3):
            assert (a.labels == label).sum() == 2
            assert (b.labels == label).sum() == 2

    def test_split_half_odd_counts(self):
        ds = _labeled(n_per_class=3, n_classes=2)
        a, b = ds.split_half(seed=0)
        assert len(a) + len(b) == 6
        # the bigger half gets the extras
        assert len(a) == 2
        assert len(b) == 4

    def test_subset(self):
        ds = _labeled()
        sub = ds.subset([0, 2, 4])
        assert len(sub) == 3
        assert np.array_equal(sub.labels, ds.labels[[0, 2, 4]])


class TestClassificationDataset:
    def test_describe(self):
        ds = ClassificationDataset("n", _labeled(), _labeled(seed=1))
        text = ds.describe()
        assert "n:" in text and "classes=3" in text

    def test_length_property(self):
        ds = ClassificationDataset("n", _labeled(length=32), _labeled(length=32))
        assert ds.length == 32


class TestWorkload:
    def test_requires_database(self):
        with pytest.raises(DatasetError):
            Workload(database=[], queries=[np.zeros(3)])

    def test_requires_queries(self):
        with pytest.raises(DatasetError):
            Workload(database=[np.zeros(3)], queries=[])

    def test_length(self):
        wl = Workload(database=[np.zeros(9)], queries=[np.zeros(9)])
        assert wl.length == 9
