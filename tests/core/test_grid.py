"""Tests for Bound and Grid (Definitions 2-3, Equation 1, Section 5.1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.grid import Bound, Grid
from repro.exceptions import GridError, ParameterError


def _bound_1d(t_max=99.0, lo=-3.0, hi=3.0):
    return Bound(0.0, t_max, (lo,), (hi,))


class TestBound:
    def test_of_database(self):
        db = [np.array([0.0, 1.0, 5.0]), np.array([-2.0, 0.5, 1.0, 3.0])]
        bound = Bound.of_database(db)
        assert bound.t_min == 0.0
        assert bound.t_max == 3.0  # longest series has 4 points
        assert bound.x_min == (-2.0,)
        assert bound.x_max == (5.0,)

    def test_of_database_with_padding(self):
        bound = Bound.of_database([np.array([0.0, 1.0])], value_padding=0.5)
        assert bound.x_min == (-0.5,)
        assert bound.x_max == (1.5,)

    def test_empty_database_raises(self):
        with pytest.raises(GridError):
            Bound.of_database([])

    def test_negative_padding_raises(self):
        with pytest.raises(ParameterError):
            Bound.of_database([np.array([0.0])], value_padding=-1)

    def test_mixed_dims_raise(self):
        with pytest.raises(GridError):
            Bound.of_database([np.zeros(3), np.zeros((3, 2))])

    def test_invalid_ranges_raise(self):
        with pytest.raises(GridError):
            Bound(1.0, 0.0, (0.0,), (1.0,))
        with pytest.raises(GridError):
            Bound(0.0, 1.0, (1.0,), (0.0,))
        with pytest.raises(GridError):
            Bound(0.0, 1.0, (0.0, 0.0), (1.0,))

    def test_contains(self):
        bound = _bound_1d(t_max=3.0, lo=0.0, hi=1.0)
        series = np.array([0.5, 2.0, -1.0, 0.9, 0.1])
        mask = bound.contains(series)
        # point 1 exceeds hi, point 2 below lo, point 4 has t=4 > t_max
        assert mask.tolist() == [True, False, False, True, False]

    def test_contains_rejects_wrong_dims(self):
        with pytest.raises(GridError):
            _bound_1d().contains(np.zeros((3, 2)))

    def test_covers(self):
        big = _bound_1d(t_max=10, lo=-5, hi=5)
        small = _bound_1d(t_max=5, lo=-1, hi=1)
        assert big.covers(small)
        assert not small.covers(big)

    def test_covers_dim_mismatch(self):
        b2 = Bound(0.0, 1.0, (0.0, 0.0), (1.0, 1.0))
        assert not _bound_1d().covers(b2)

    def test_of_series_multidim(self):
        series = np.array([[0.0, 10.0], [1.0, -5.0]])
        bound = Bound.of_series(series)
        assert bound.x_min == (0.0, -5.0)
        assert bound.x_max == (1.0, 10.0)


class TestGridConstruction:
    def test_from_cell_sizes_counts(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=99, lo=-3, hi=3), sigma=10, epsilon=1.0)
        assert grid.n_columns == 10  # floor(99/10)+1
        assert grid.n_rows == (7,)   # floor(6/1)+1

    def test_from_resolution(self):
        grid = Grid.from_resolution(_bound_1d(), scale=4)
        assert grid.n_columns == 4
        assert grid.n_rows == (4,)
        assert grid.n_cells == 16

    def test_degenerate_value_span(self):
        bound = Bound(0.0, 9.0, (0.0,), (0.0,))
        grid = Grid.from_cell_sizes(bound, sigma=2, epsilon=0.5)
        assert grid.n_rows == (1,)

    def test_bad_params_raise(self):
        bound = _bound_1d()
        with pytest.raises(ParameterError):
            Grid.from_cell_sizes(bound, sigma=0, epsilon=1)
        with pytest.raises(ParameterError):
            Grid.from_cell_sizes(bound, sigma=1, epsilon=0)
        with pytest.raises(ParameterError):
            Grid.from_resolution(bound, 0)


class TestCellAssignment:
    def test_columns_respect_sigma(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=9), sigma=3, epsilon=1.0)
        series = np.zeros(10)
        cols = grid.columns_of(series)
        assert cols.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_rows_respect_epsilon(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=4, lo=0.0, hi=2.0), sigma=1, epsilon=0.5)
        series = np.array([0.0, 0.49, 0.5, 1.99, 2.0])
        rows = grid.rows_of(series)[:, 0]
        assert rows.tolist() == [0, 0, 1, 3, 4]

    def test_points_outside_bound_clamped(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=4, lo=0.0, hi=1.0), sigma=1, epsilon=0.5)
        series = np.array([-5.0, 9.0, 0.5, 0.5, 0.5])
        rows = grid.rows_of(series)[:, 0]
        assert rows[0] == 0
        assert rows[1] == grid.n_rows[0] - 1

    def test_cell_id_formula_1d(self):
        """Equation 1 (0-based): id = row * n_columns + column."""
        grid = Grid.from_cell_sizes(_bound_1d(t_max=5, lo=0.0, hi=1.0), sigma=2, epsilon=0.5)
        series = np.array([0.0, 0.6, 1.0, 0.0, 0.6, 1.0])
        ids = grid.cell_ids_per_point(series)
        cols = grid.columns_of(series)
        rows = grid.rows_of(series)[:, 0]
        assert np.array_equal(ids, rows * grid.n_columns + cols)

    def test_decode_inverts_encode(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=20), sigma=3, epsilon=0.7)
        rng = np.random.default_rng(0)
        series = rng.uniform(-3, 3, size=21)
        ids = grid.cell_ids_per_point(series)
        cols, rows = grid.decode_cell(ids)
        assert np.array_equal(cols, grid.columns_of(series))
        assert np.array_equal(rows, grid.rows_of(series))

    def test_ids_within_range(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=50), sigma=4, epsilon=0.3)
        rng = np.random.default_rng(1)
        ids = grid.cell_ids_per_point(rng.uniform(-3, 3, size=51))
        assert ids.min() >= 0
        assert ids.max() < grid.n_cells

    def test_dim_mismatch_raises(self):
        grid = Grid.from_cell_sizes(_bound_1d(), sigma=1, epsilon=1)
        with pytest.raises(GridError):
            grid.rows_of(np.zeros((5, 2)))


class TestMultiDim:
    def _grid(self):
        bound = Bound(0.0, 9.0, (-1.0, -2.0), (1.0, 2.0))
        return Grid.from_cell_sizes(bound, sigma=2, epsilon=0.5)

    def test_cell_count(self):
        grid = self._grid()
        assert grid.n_columns == 5
        assert grid.n_rows == (5, 9)
        assert grid.n_cells == 5 * 5 * 9

    def test_ids_unique_per_cell(self):
        """Distinct (column, row_x, row_y) triples get distinct IDs."""
        grid = self._grid()
        rng = np.random.default_rng(2)
        series = np.column_stack(
            [rng.uniform(-1, 1, size=10), rng.uniform(-2, 2, size=10)]
        )
        ids = grid.cell_ids_per_point(series)
        cols, rows = grid.decode_cell(ids)
        triples = set(zip(cols.tolist(), rows[:, 0].tolist(), rows[:, 1].tolist()))
        assert len(set(ids.tolist())) == len(triples)

    def test_decode_inverts_encode_2d(self):
        grid = self._grid()
        rng = np.random.default_rng(3)
        series = np.column_stack(
            [rng.uniform(-1, 1, size=10), rng.uniform(-2, 2, size=10)]
        )
        ids = grid.cell_ids_per_point(series)
        cols, rows = grid.decode_cell(ids)
        assert np.array_equal(cols, grid.columns_of(series))
        assert np.array_equal(rows, grid.rows_of(series))


class TestZones:
    def test_partition_covers_all_cells(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=30), sigma=2, epsilon=0.4)
        all_cells = np.arange(grid.n_cells)
        zones = grid.zones_of_cells(all_cells, scale=3)
        assert zones.min() >= 0
        assert zones.max() < 9

    def test_each_cell_in_exactly_one_zone(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=30), sigma=2, epsilon=0.4)
        cells = np.arange(grid.n_cells)
        z1 = grid.zones_of_cells(cells, scale=4)
        z2 = grid.zones_of_cells(cells, scale=4)
        assert np.array_equal(z1, z2)  # deterministic partition

    def test_scale_one_is_single_zone(self):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=10), sigma=1, epsilon=1.0)
        zones = grid.zones_of_cells(np.arange(grid.n_cells), scale=1)
        assert np.all(zones == 0)

    def test_bad_scale_raises(self):
        grid = Grid.from_cell_sizes(_bound_1d(), sigma=1, epsilon=1)
        with pytest.raises(ParameterError):
            grid.zones_of_cells(np.array([0]), scale=0)

    @given(st.integers(min_value=1, max_value=8))
    def test_zone_sizes_roughly_balanced(self, scale):
        grid = Grid.from_cell_sizes(_bound_1d(t_max=63), sigma=1, epsilon=0.1)
        zones = grid.zones_of_cells(np.arange(grid.n_cells), scale)
        counts = np.bincount(zones, minlength=scale * scale)
        assert counts.sum() == grid.n_cells
        assert counts.min() > 0
