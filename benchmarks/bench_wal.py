"""Benchmark: write-ahead-log overhead on the insert path.

Times an identical insert stream into two databases — one bare, one
with an attached :class:`repro.core.wal.WriteAheadLog` at the default
fsync batching — and fails when journaling costs more than
``--max-overhead`` (default 15%, the DESIGN.md §12 budget).  A third
run at ``fsync_batch=1`` records the worst-case (every insert fsynced)
for reference; it is reported but never gated, since per-insert fsync
is a durability choice, not the default.

The run then crashes the journaled database (no close, no final sync),
recovers it from archive + WAL, and verifies the recovered k-NN answers
are bit-identical to the live ones — a benchmark that lies about
durability would be worse than none.  Recovery time and replay rate
are recorded alongside the overhead numbers.

Results land in ``BENCH_wal.json`` and a summary is appended to the
append-only ``BENCH_trajectory.json`` history.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_wal.py

or as a CI gate on a small workload::

    PYTHONPATH=src python benchmarks/bench_wal.py \
        --series 600 --inserts 200 --repeats 3 --max-overhead 0.15
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import STS3Database, __version__
from repro.core import WriteAheadLog, default_wal_dir, recover_database, save_database

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_wal.json"
DEFAULT_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

TRAJECTORY_SCHEMA = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=2000,
                        help="base database size")
    parser.add_argument("--inserts", type=int, default=500,
                        help="timed insert stream length")
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--sigma", type=float, default=3)
    parser.add_argument("--epsilon", type=float, default=0.58)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions; best (min) time is recorded")
    parser.add_argument("--fsync-batch", type=int, default=None,
                        help="records per fsync (default: the WAL default)")
    parser.add_argument("--max-overhead", type=float, default=0.15,
                        help="exit non-zero when WAL overhead at default "
                             "batching exceeds this fraction "
                             "(negative disables the gate)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON result path ('-' to skip writing)")
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
                        help="append-only run history path ('-' to skip)")
    return parser


def _insert_stream(args) -> list[np.ndarray]:
    """Deterministic stream: mostly in-bound, every 25th out-of-bound."""
    rng = np.random.default_rng(args.seed + 1)
    stream = []
    spike = 100.0
    for i in range(args.inserts):
        series = rng.normal(size=args.length)
        if i % 25 == 24:
            series[int(rng.integers(0, args.length))] = spike
            spike += 10.0  # always breaks even the grown bound
        stream.append(series)
    return stream


def _fresh_db(args) -> STS3Database:
    rng = np.random.default_rng(args.seed)
    base = [rng.normal(size=args.length) for _ in range(args.series)]
    return STS3Database(
        base, sigma=args.sigma, epsilon=args.epsilon,
        normalize=False, buffer_capacity=64,
    )


def _one_insert_run(args, stream, wal_dir=None, fsync_batch=None):
    """Seconds for one pass of the stream into a fresh database.

    The cyclic GC is disabled inside the timed region (exactly as
    ``timeit`` does): collection pauses triggered by allocation count
    land on whichever run happens to cross the threshold, drowning the
    ~10% effect being measured in ~25% noise.
    """
    db = _fresh_db(args)
    if wal_dir is not None:
        shutil.rmtree(wal_dir, ignore_errors=True)
        kwargs = {} if fsync_batch is None else {"fsync_batch": fsync_batch}
        db.attach_wal(WriteAheadLog(wal_dir, **kwargs))
    reenable = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        for series in stream:
            db.insert(series)
        return time.perf_counter() - start, db
    finally:
        if reenable:
            gc.enable()


def run(args: argparse.Namespace) -> dict:
    stream = _insert_stream(args)
    print(
        f"workload: {args.series} series, {args.inserts} inserts, "
        f"length {args.length} ({args.repeats} repeats)",
        flush=True,
    )
    workdir = Path(tempfile.mkdtemp(prefix="sts3-bench-wal-"))
    try:
        path = workdir / "db.sts3"
        # bare / journaled / fsync-per-insert runs are interleaved
        # within each repeat, so background load drift hits all three
        # alike instead of biasing whichever phase ran under pressure
        bare_best = wal_best = fsync1_best = float("inf")
        wal_db = None
        for _ in range(args.repeats):
            seconds, db = _one_insert_run(args, stream)
            bare_best = min(bare_best, seconds)
            db.close()
            if wal_db is not None:
                wal_db.close()
            seconds, wal_db = _one_insert_run(
                args, stream, default_wal_dir(path), args.fsync_batch
            )
            wal_best = min(wal_best, seconds)
            seconds, db = _one_insert_run(
                args, stream, workdir / "wal-fsync1", fsync_batch=1
            )
            fsync1_best = min(fsync1_best, seconds)
            db.close()
        # checkpoint-free crash: archive the *base* state only (wal_seq
        # 0), so recovery must replay the entire insert stream from the
        # log left behind by the timed run.
        save_database(_fresh_db(args), path, checkpoint_wal=False)

        sync_start = time.perf_counter()
        wal_db.wal.sync()
        sync_tail = time.perf_counter() - sync_start

        wal_files = list(default_wal_dir(path).glob("*.wal"))
        wal_bytes = sum(f.stat().st_size for f in wal_files)

        recover_start = time.perf_counter()
        recovered = recover_database(path)
        recover_seconds = time.perf_counter() - recover_start

        rng = np.random.default_rng(args.seed + 2)
        identical = True
        for _ in range(5):
            q = rng.normal(size=args.length)
            live = wal_db.query(q, k=args.k, method="index")
            back = recovered.query(q, k=args.k, method="index")
            identical = identical and (
                live.indices() == back.indices()
                and live.similarities() == back.similarities()
            )
        recovered.close()
        wal_db.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    overhead = wal_best / bare_best - 1.0
    fsync1_overhead = fsync1_best / bare_best - 1.0
    record = {
        "benchmark": "wal",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "workload": {
            "n_series": args.series,
            "n_inserts": args.inserts,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
        },
        "repeats": args.repeats,
        "bare_inserts": {
            "seconds": round(bare_best, 6),
            "inserts_per_second": round(args.inserts / bare_best, 2),
        },
        "wal_inserts": {
            "seconds": round(wal_best, 6),
            "inserts_per_second": round(args.inserts / wal_best, 2),
            "fsync_batch": args.fsync_batch or "default",
            "sync_tail_seconds": round(sync_tail, 6),
            "log_bytes": wal_bytes,
            "log_files": len(wal_files),
        },
        "fsync_every_insert": {
            "seconds": round(fsync1_best, 6),
            "overhead_vs_bare": round(fsync1_overhead, 4),
        },
        "overhead_vs_bare": round(overhead, 4),
        "recovery": {
            "seconds": round(recover_seconds, 6),
            "replayed_inserts": args.inserts,
            "inserts_per_second": round(args.inserts / recover_seconds, 2),
            "identical_neighbor_lists": identical,
        },
    }
    print(
        f"bare inserts : {bare_best * 1e3:8.1f} ms "
        f"({record['bare_inserts']['inserts_per_second']:8.1f} ins/s)"
    )
    print(
        f"wal inserts  : {wal_best * 1e3:8.1f} ms "
        f"(+{overhead:.1%}, {wal_bytes / 1024:.0f} KiB logged)"
    )
    print(f"fsync=1      : {fsync1_best * 1e3:8.1f} ms (+{fsync1_overhead:.1%})")
    print(
        f"recovery     : {recover_seconds * 1e3:8.1f} ms for "
        f"{args.inserts} records   identical={identical}"
    )
    return record


def append_trajectory(record: dict, path: Path) -> None:
    """Append this run to the shared append-only trajectory history."""
    history = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history["runs"] = loaded["runs"]
        except (json.JSONDecodeError, OSError):
            print(f"warning: {path} unreadable, starting a fresh trajectory")
    entry = {
        "schema": TRAJECTORY_SCHEMA,
        "benchmark": "wal",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repro": __version__,
        },
        "workload": record["workload"],
        "summary": {
            "wal_overhead": record["overhead_vs_bare"],
            "fsync_every_insert_overhead":
                record["fsync_every_insert"]["overhead_vs_bare"],
            "recovery_inserts_per_second":
                record["recovery"]["inserts_per_second"],
            "recovered_identical":
                record["recovery"]["identical_neighbor_lists"],
        },
    }
    history["runs"].append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended run {len(history['runs'])} to {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    record = run(args)

    if str(args.output) != "-":
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
    if str(args.trajectory) != "-":
        append_trajectory(record, args.trajectory)

    if not record["recovery"]["identical_neighbor_lists"]:
        print("FAIL: recovered database answered differently", file=sys.stderr)
        return 1
    overhead = record["overhead_vs_bare"]
    if args.max_overhead >= 0 and overhead > args.max_overhead:
        print(
            f"FAIL: WAL overhead {overhead:.1%} exceeds "
            f"{args.max_overhead:.1%} at default fsync batching",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
