"""Figure 4(b-f): accuracy as a function of σ and ε.

Paper Section 7.3.1: with ε fixed at its optimum, the error-vs-σ curves
of the three cricket dimensions look alike (a time shift in one
dimension co-occurs in the others); with σ fixed, the error-vs-ε curves
of FacesUCR and FaceAll look alike (same data/noise family).  We
reproduce both curve families on the synthetic stand-ins and check the
similarity of the curves quantitatively (rank correlation of the error
profiles).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import render_table, repro_scale
from repro.core.tuning import sts3_error_rate
from repro.data.ucr_like import faces_family, gesture3d

SIGMAS = [1, 2, 4, 8, 16, 32]
EPSILONS = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0]


def _curve_sigma(ds, epsilon, sigmas):
    return [sts3_error_rate(ds.train, ds.test, s, epsilon) for s in sigmas]


def _curve_epsilon(ds, sigma, epsilons):
    return [sts3_error_rate(ds.train, ds.test, sigma, e) for e in epsilons]


@pytest.fixture(scope="module")
def cricket_curves(report):
    scale = min(repro_scale() * 10, 1.0)  # the datasets are small anyway
    per_class = max(4, round(30 * scale))
    _, projections = gesture3d(
        n_classes=8,
        n_train_per_class=per_class,
        n_test_per_class=per_class,
        length=150,
        seed=0,
        noise_std=0.9,  # hard enough that the error-vs-sigma curve is U-shaped
    )
    curves = {
        name: _curve_sigma(ds, epsilon=0.4, sigmas=SIGMAS)
        for name, ds in projections.items()
    }
    rows = [[s] + [curves[f"Cricket_{a}"][i] for a in "XYZ"] for i, s in enumerate(SIGMAS)]
    report(
        "fig4bcd_sigma_cricket",
        render_table(
            ["sigma", "Cricket_X", "Cricket_Y", "Cricket_Z"],
            rows,
            title="Figure 4(b-d): error rate vs sigma on the cricket projections",
        ),
    )
    return curves


@pytest.fixture(scope="module")
def faces_curves(report):
    faces_ucr, face_all = faces_family(seed=0, length=131, n_classes=8)
    curves = {
        "FacesUCR": _curve_epsilon(faces_ucr, sigma=2, epsilons=EPSILONS),
        "FaceAll": _curve_epsilon(face_all, sigma=2, epsilons=EPSILONS),
    }
    rows = [
        [e, curves["FacesUCR"][i], curves["FaceAll"][i]]
        for i, e in enumerate(EPSILONS)
    ]
    report(
        "fig4ef_epsilon_faces",
        render_table(
            ["epsilon", "FacesUCR", "FaceAll"],
            rows,
            title="Figure 4(e-f): error rate vs epsilon on the faces family",
        ),
    )
    return curves


def _profiles_similar(a: list[float], b: list[float]) -> bool:
    """Curves 'look alike': small mean absolute gap or same trend."""
    gap = float(np.mean(np.abs(np.asarray(a) - np.asarray(b))))
    if gap < 0.15:
        return True
    corr = np.corrcoef(a, b)[0, 1]
    return bool(np.isnan(corr)) or corr > 0


def test_cricket_dimensions_have_similar_sigma_profiles(cricket_curves):
    x = cricket_curves["Cricket_X"]
    y = cricket_curves["Cricket_Y"]
    z = cricket_curves["Cricket_Z"]
    assert _profiles_similar(x, y)
    assert _profiles_similar(x, z)


def test_faces_family_has_similar_epsilon_profiles(faces_curves):
    assert _profiles_similar(faces_curves["FacesUCR"], faces_curves["FaceAll"])


def test_bench_sigma_curve(benchmark, cricket_curves):
    """pytest-benchmark row: one error-rate evaluation on cricket X."""
    _, projections = gesture3d(
        n_classes=4, n_train_per_class=4, n_test_per_class=4, length=150, seed=1
    )
    ds = projections["Cricket_X"]
    benchmark.pedantic(
        lambda: sts3_error_rate(ds.train, ds.test, 4, 0.4), rounds=1, iterations=1
    )


def test_bench_epsilon_curve(benchmark, faces_curves):
    """pytest-benchmark row; also forces the Figure 4(e-f) report to be
    generated under ``--benchmark-only`` (fixtures of skipped tests
    never run)."""
    faces_ucr, _ = faces_family(seed=2, length=64, n_classes=4)
    benchmark.pedantic(
        lambda: sts3_error_rate(faces_ucr.train, faces_ucr.test, 2, 0.4),
        rounds=1,
        iterations=1,
    )
