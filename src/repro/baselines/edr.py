"""Edit Distance on Real sequence (EDR) — Chen, Özsu & Oria, SIGMOD 2005.

EDR treats a time series as a string: two points "match" when every
coordinate differs by at most ``epsilon``; a non-match, insertion, or
deletion each costs 1.  Unlike LCSS it penalizes gaps, and unlike ERP
it is not a metric (the triangle inequality can fail), but it is robust
to noise because any within-ε pair costs the same zero.

Cited by the paper's related work (Section 8.2, [9]) as one of the
string-inspired measures STS3 competes with; included so the baseline
suite covers that family completely.  Anti-diagonal vectorized like the
other dynamic programs in this package.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["edr_distance", "edr_similarity"]


def edr_distance(
    a: np.ndarray,
    b: np.ndarray,
    epsilon: float,
) -> int:
    """EDR edit cost between ``a`` and ``b`` (integer ≥ 0).

    Recurrence (1-based prefixes, boundary ``D[i,0]=i``, ``D[0,j]=j``)::

        D[i,j] = min(D[i-1,j-1] + subcost, D[i-1,j] + 1, D[i,j-1] + 1)

    with ``subcost = 0`` if the points match within ``epsilon`` else 1.
    """
    if epsilon < 0:
        raise ParameterError(f"epsilon must be >= 0, got {epsilon}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return max(n, m)

    big = n + m + 1  # effectively +inf for this DP
    # prev1[i] = D value of cell (i, d-1-i); prev2[i] = (i, d-2-i);
    # cells are 1-based prefix pairs; boundaries handled explicitly.
    prev1 = np.full(n + 1, big, dtype=np.int64)
    prev2 = np.full(n + 1, big, dtype=np.int64)
    prev1[0] = 0  # D[0,0] on diagonal 0... replaced below per diagonal
    indices = np.arange(n + 1)

    def boundary(i: int, j: int) -> int:
        if i == 0:
            return j
        if j == 0:
            return i
        return big

    for d in range(1, n + m + 1):
        cur = np.full(n + 1, big, dtype=np.int64)
        i_lo = max(0, d - m)
        i_hi = min(n, d)
        ivals = indices[i_lo : i_hi + 1]
        jvals = d - ivals
        inner = (ivals >= 1) & (jvals >= 1)
        # boundary cells of this diagonal
        if i_lo == 0:
            cur[0] = d  # D[0, d] = d
        if d <= n:
            cur[d] = d  # D[d, 0] = d
        if inner.any():
            iv = ivals[inner]
            jv = jvals[inner]
            if a.ndim == 1:
                match = np.abs(a[iv - 1] - b[jv - 1]) <= epsilon
            else:
                match = np.all(np.abs(a[iv - 1] - b[jv - 1]) <= epsilon, axis=1)
            subcost = (~match).astype(np.int64)
            diag = prev2[iv - 1]
            up = prev1[iv - 1]
            left = prev1[iv]
            # prev arrays hold interior values; patch boundary reads
            diag = np.where(jv - 1 == 0, iv - 1, diag)
            diag = np.where(iv - 1 == 0, jv - 1, diag)
            up = np.where(jv == 0, iv - 1, up)
            up = np.where(iv - 1 == 0, jv, up)
            left = np.where(jv - 1 == 0, iv, left)
            cur[iv] = np.minimum(diag + subcost, np.minimum(up, left) + 1)
        prev2, prev1 = prev1, cur
    return int(prev1[n])


def edr_similarity(a: np.ndarray, b: np.ndarray, epsilon: float) -> float:
    """``1 − EDR / max(|a|, |b|)`` ∈ [0, 1]; higher is more similar."""
    n, m = len(a), len(b)
    if max(n, m) == 0:
        return 1.0
    return 1.0 - edr_distance(a, b, epsilon) / max(n, m)
