"""WAL-shipping replication: replica reads, shipping, and failover.

docs/replication.md's contracts, exercised with real follower
processes on deliberately small corpora (the same sizing rationale as
``test_sharded_database.py`` — these tests fork, kill, and promote
processes, so the workload is sized for the lifecycle):

1. **replica parity** — a caught-up follower answers bit-identically
   (``float.hex``) to its primary, so ``read_preference="replica"`` /
   ``"nearest"`` preserve the scatter-gather merge contract,
2. **bounded staleness** — a partitioned follower's lag grows and is
   excluded from reads; healing the partition drains it back to zero,
3. **failover** — SIGKILL the primary mid-insert-storm and the
   freshest follower is promoted with zero acked-write loss: every
   acknowledged insert is present and post-promotion answers are
   bit-identical to a never-failed single-process engine,
4. **fencing** — an ack carrying a stale epoch is never believed.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import STS3Database
from repro.core.replication import ReplicationError, replica_mirror_name
from repro.core.shard import ShardedDatabase, ShardError
from repro.core.wal import read_applied_seq, scan_wal
from repro.exceptions import FollowerWriteError, ParameterError

LENGTH = 32
SIGMA = 2
EPSILON = 0.5


def make_series(rng, n):
    return [rng.normal(size=LENGTH) for _ in range(n)]


def hex_answers(results):
    """Exact neighbor lists: (global id, similarity as hex) per query."""
    return [
        [(n.index, float(n.similarity).hex()) for n in r.neighbors]
        for r in results
    ]


def build_pair(tmp_path, seed=11, n_series=120, shards=2, replicas=2, **kw):
    """The same corpus as a single-process oracle and a replicated one."""
    rng = np.random.default_rng(seed)
    series = make_series(rng, n_series)
    single = STS3Database(series, sigma=SIGMA, epsilon=EPSILON, normalize=False)
    sharded = ShardedDatabase.build(
        series, shards, tmp_path / "shards",
        sigma=SIGMA, epsilon=EPSILON, normalize=False,
        replicas=replicas, **kw,
    )
    return single, sharded, rng


def shard_lag(sharded, shard_id):
    """Per-replica lag_records for one shard (None for dead followers)."""
    [entry] = [e for e in sharded.replica_status() if e["shard"] == shard_id]
    return [r.get("lag_records") for r in entry["replicas"]]


class TestReplicaReads:
    def test_replica_answers_bit_identical(self, tmp_path):
        single, sharded, rng = build_pair(tmp_path)
        try:
            queries = make_series(rng, 8)
            expected = hex_answers(single.query_batch(queries, k=7))
            for pref in ("primary", "replica", "nearest"):
                got = sharded.query_batch(queries, k=7, read_preference=pref)
                assert hex_answers(got) == expected, pref
                assert all(r.complete for r in got), pref
                assert all(r.skipped_shards == [] for r in got), pref
        finally:
            single.close()
            sharded.close()

    def test_replica_reads_cover_fresh_inserts(self, tmp_path):
        # shipping runs inline after each acked insert, so a follower
        # is at most one insert behind — and zero behind by ack time
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            probe = rng.normal(size=LENGTH) * 8.0
            report = sharded.insert(probe)
            result = sharded.query(probe, k=1, read_preference="replica")
            assert result.complete
            assert result.neighbors[0].index == report["id"]
        finally:
            sharded.close()

    def test_unknown_read_preference_rejected(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        try:
            with pytest.raises(ParameterError):
                sharded.query(rng.normal(size=LENGTH), read_preference="nope")
            with pytest.raises(ParameterError):
                ShardedDatabase.open(sharded.directory, read_preference="bad")
        finally:
            sharded.close()

    def test_replica_pref_without_replicas_falls_back_to_primary(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=0)
        try:
            result = sharded.query(
                rng.normal(size=LENGTH), k=3, read_preference="replica"
            )
            assert result.complete
            assert len(result.neighbors) == 3
        finally:
            sharded.close()


class TestShippingAndLag:
    def test_steady_state_lag_is_zero(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            for _ in range(4):
                sharded.insert(rng.normal(size=LENGTH))
            for entry in sharded.replica_status():
                for replica in entry["replicas"]:
                    assert replica["alive"]
                    assert replica["lag_records"] == 0
                    assert replica["applied_seq"] == entry["primary_seq"]
        finally:
            sharded.close()

    def test_partition_grows_lag_then_heals(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        try:
            for shard_id in range(sharded.n_shards):
                sharded._replicas.set_partitioned(shard_id, 0, True)
            reports = [sharded.insert(rng.normal(size=LENGTH)) for _ in range(6)]
            lagged = {r["shard"] for r in reports}
            for shard_id in lagged:
                assert shard_lag(sharded, shard_id) != [0]
                # a lagging follower is excluded from bounded-staleness reads
                assert sharded._replicas.endpoints(shard_id, 0) == []
            for shard_id in range(sharded.n_shards):
                sharded._replicas.set_partitioned(shard_id, 0, False)
            sharded.ship_replication()
            for shard_id in range(sharded.n_shards):
                assert shard_lag(sharded, shard_id) == [0]
        finally:
            sharded.close()

    def test_mirror_sidecar_tracks_primary_watermark(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        directory = sharded.directory
        try:
            for _ in range(3):
                sharded.insert(rng.normal(size=LENGTH))
            touched = 0
            for entry in sharded.replica_status():
                mirror = directory / replica_mirror_name(entry["shard"], 0)
                assert read_applied_seq(mirror) == entry["primary_seq"]
                records, report = scan_wal(mirror)
                assert not report.problems
                if entry["primary_seq"] > 0:
                    touched += 1
                    assert records[-1]["seq"] == entry["primary_seq"]
            assert touched >= 1  # the storm landed somewhere
        finally:
            sharded.close()

    def test_checkpoint_drains_replication_first(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            for probe in make_series(rng, 4):
                sharded.insert(probe)
            sharded.save()
            # followers survive the checkpoint and stay caught up
            for entry in sharded.replica_status():
                for replica in entry["replicas"]:
                    assert replica["alive"]
                    assert replica["lag_records"] == 0
            # replica reads remain bit-identical to primary reads
            queries = make_series(rng, 4)
            expected = hex_answers(
                sharded.query_batch(queries, k=5, read_preference="primary")
            )
            got = sharded.query_batch(queries, k=5, read_preference="replica")
            assert hex_answers(got) == expected
        finally:
            sharded.close()

    def test_checkpoint_gap_rebootstraps_partitioned_follower(self, tmp_path):
        # a follower partitioned across a checkpoint cannot catch up by
        # shipping (the generations it was tailing are retired); the
        # next ship observes the gap and re-bootstraps it from the
        # (necessarily newer) archive
        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        try:
            probe = rng.normal(size=LENGTH) * 8.0
            report = sharded.insert(probe)
            shard_id = report["shard"]
            sharded._replicas.set_partitioned(shard_id, 0, True)
            sharded.insert(rng.normal(size=LENGTH))
            sharded.insert(rng.normal(size=LENGTH))
            sharded.save()
            sharded._replicas.set_partitioned(shard_id, 0, False)
            sharded.ship_replication()
            assert shard_lag(sharded, shard_id) == [0]
            result = sharded.query(probe, k=1, read_preference="replica")
            assert result.complete
            assert result.neighbors[0].index == report["id"]
        finally:
            sharded.close()


class TestFailover:
    def test_sigkill_mid_insert_storm_zero_acked_loss(self, tmp_path):
        """The headline drill: kill a primary mid-storm, lose nothing.

        The oracle is a never-failed sharded engine fed the identical
        build and insert stream (insert answers are path-dependent, so
        the honest baseline is the same engine without the fault).
        Every insert acked by the drilled engine is applied to the
        oracle; after the kill + promotion the two must agree
        bit-for-bit on every answer, with ``complete=True`` — the
        zero-acked-write-loss contract.
        """
        rng = np.random.default_rng(11)
        series = make_series(rng, 80)
        sharded = ShardedDatabase.build(
            series, 2, tmp_path / "drilled",
            sigma=SIGMA, epsilon=EPSILON, normalize=False, replicas=2,
        )
        oracle = ShardedDatabase.build(
            series, 2, tmp_path / "oracle",
            sigma=SIGMA, epsilon=EPSILON, normalize=False,
        )
        try:
            acked = []
            for _ in range(6):
                probe = rng.normal(size=LENGTH)
                acked.append(sharded.insert(probe))
                oracle.insert(probe)
            victim = acked[-1]["shard"]
            sharded.kill_worker(victim)
            # the storm continues: an insert whose RPC fails reconciles
            # against the promoted follower — committed if the journaled
            # write survived, raised (never acked) otherwise, in which
            # case the client retries; the oracle only sees acked writes
            for _ in range(6):
                probe = rng.normal(size=LENGTH)
                for _attempt in range(3):
                    try:
                        acked.append(sharded.insert(probe))
                        break
                    except ShardError:
                        continue  # not acked; retry against new primary
                else:
                    raise AssertionError("insert never acknowledged")
                oracle.insert(probe)
            assert len(sharded) == len(oracle)
            assert [a["id"] for a in acked] == list(range(80, 92))
            queries = make_series(rng, 6)
            expected = hex_answers(oracle.query_batch(queries, k=7))
            got = sharded.query_batch(queries, k=7)
            assert hex_answers(got) == expected
            assert all(r.complete for r in got)
            assert all(r.skipped_shards == [] for r in got)
            assert sharded.manifest["epochs"][victim] >= 1
        finally:
            oracle.close()
            sharded.close()

    def test_query_after_kill_promotes_and_stays_complete(self, tmp_path):
        single, sharded, rng = build_pair(tmp_path)
        try:
            sharded.kill_worker(0)
            queries = make_series(rng, 4)
            got = sharded.query_batch(queries, k=5)
            assert all(r.complete for r in got)
            assert all(r.skipped_shards == [] for r in got)
            assert hex_answers(got) == hex_answers(
                single.query_batch(queries, k=5)
            )
            assert sharded.manifest["epochs"][0] == 1
            # one follower was consumed by the promotion
            [entry] = [e for e in sharded.replica_status() if e["shard"] == 0]
            assert sum(1 for r in entry["replicas"] if r["alive"]) == 1
            assert entry["wal_dir"] == replica_mirror_name(0, 0)
        finally:
            single.close()
            sharded.close()

    def test_manual_promote_runbook(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path)
        try:
            probe = rng.normal(size=LENGTH) * 8.0
            report = sharded.insert(probe)
            before = sharded.manifest["epochs"][report["shard"]]
            # promotion must not change any answer: the follower caught
            # up from the drained WAL is the same database
            queries = make_series(rng, 4)
            expected = hex_answers(sharded.query_batch(queries, k=5))
            ready = sharded.promote(report["shard"])
            assert ready["promoted"]
            assert sharded.manifest["epochs"][report["shard"]] == before + 1
            assert hex_answers(sharded.query_batch(queries, k=5)) == expected
            result = sharded.query(probe, k=1)
            assert result.complete
            assert result.neighbors[0].index == report["id"]
        finally:
            sharded.close()

    def test_promote_without_replicas_rejected(self, tmp_path):
        _, sharded, _ = build_pair(tmp_path, n_series=60, replicas=0)
        try:
            with pytest.raises(ShardError):
                sharded.promote(0)
        finally:
            sharded.close()

    def test_reopen_after_failover_reads_promoted_wal(self, tmp_path):
        # the manifest's wal_dirs entry survives the failover, so a
        # cold reopen recovers the shard from the promoted follower's
        # mirror — including writes journaled *after* the promotion
        _, sharded, rng = build_pair(tmp_path)
        directory = sharded.directory
        queries = make_series(rng, 4)
        try:
            sharded.kill_worker(0)
            sharded.query(queries[0], k=1)  # triggers the failover
            assert sharded.manifest["epochs"][0] == 1
            probe = rng.normal(size=LENGTH) * 8.0
            report = sharded.insert(probe)
            expected = hex_answers(sharded.query_batch(queries, k=5))
        finally:
            sharded.close()  # no save(): the promoted WAL is the record
        manifest = ShardedDatabase.read_manifest(directory)
        assert manifest["epochs"][0] == 1
        reopened = ShardedDatabase.open(directory)
        try:
            assert len(reopened) == 121
            result = reopened.query(probe, k=1)
            assert result.neighbors[0].index == report["id"]
            assert hex_answers(reopened.query_batch(queries, k=5)) == expected
        finally:
            reopened.close()

    def test_failover_exhaustion_falls_back_to_restart(self, tmp_path):
        # one follower, consumed by the first failover: the second kill
        # has nobody to promote, so the engine restarts the primary
        # from its (promoted) WAL and retries — still complete, and the
        # epoch does not move because no promotion happened
        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        try:
            sharded.kill_worker(0)
            first = sharded.query(rng.normal(size=LENGTH), k=3)
            assert first.complete
            assert sharded.manifest["epochs"][0] == 1
            sharded.kill_worker(0)
            second = sharded.query(rng.normal(size=LENGTH), k=3)
            assert second.complete
            assert second.skipped_shards == []
            assert sharded.manifest["epochs"][0] == 1
        finally:
            sharded.close()

    def test_failovers_counted(self, tmp_path):
        from repro.obs.metrics import get_registry

        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            failovers = get_registry().counter("sts3_failovers_total")
            before = failovers.value(shard="0")
            sharded.kill_worker(0)
            sharded.query(rng.normal(size=LENGTH), k=1)
            assert failovers.value(shard="0") == before + 1
        finally:
            sharded.close()


class TestFencing:
    def test_stale_epoch_ack_rejected(self, tmp_path):
        # simulate a zombie: the manifest says a newer primary exists,
        # so the still-draining old primary's ack must not be believed
        from repro.obs.metrics import get_registry

        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        try:
            fenced = get_registry().counter("sts3_fenced_replies_total")
            report = sharded.insert(rng.normal(size=LENGTH))
            shard_id = sharded.ring.owner(sharded._next_id)
            sharded.manifest["epochs"][shard_id] += 1
            with pytest.raises(ShardError, match="stale fencing epoch"):
                sharded.insert(rng.normal(size=LENGTH))
            assert fenced.value(shard=str(shard_id)) >= 1
            del report
        finally:
            sharded.close()

    def test_promoted_primary_acks_new_epoch(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            sharded.kill_worker(0)
            sharded.query(rng.normal(size=LENGTH), k=1)
            assert sharded.manifest["epochs"][0] == 1
            # writes against the promoted follower pass the epoch check
            for _ in range(4):
                sharded.insert(rng.normal(size=LENGTH))
            assert len(sharded) == 64
        finally:
            sharded.close()


class TestFaultDrills:
    def test_ship_partition_fault_skips_round_then_heals(self, tmp_path):
        from repro import faults
        from repro.faults import Fault, FaultPlan
        from repro.obs.metrics import get_registry

        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        try:
            failures = get_registry().counter(
                "sts3_replication_ship_failures_total"
            )
            plan = FaultPlan(
                [Fault("replication.ship", "crash", hit=1, repeat=True)], seed=3
            )
            with faults.inject(plan):
                report = sharded.insert(rng.normal(size=LENGTH))
            shard_id = report["shard"]
            assert failures.value(
                shard=str(shard_id), replica="0", kind="partition"
            ) >= 1
            assert shard_lag(sharded, shard_id) != [0]
            sharded.ship_replication()  # plan gone: the partition healed
            assert shard_lag(sharded, shard_id) == [0]
        finally:
            sharded.close()

    def test_apply_crash_kills_follower_then_rebootstraps(self, tmp_path):
        from repro import faults
        from repro.faults import Fault, FaultPlan
        from repro.obs.metrics import get_registry

        # followers fork with the installed plan, so the first shipped
        # batch kills them mid-apply; the supervisor reaps + respawns
        rng = np.random.default_rng(7)
        series = make_series(rng, 60)
        plan = FaultPlan([Fault("replication.apply", "crash", hit=1)], seed=1)
        with faults.inject(plan):
            sharded = ShardedDatabase.build(
                series, 2, tmp_path / "shards",
                sigma=SIGMA, epsilon=EPSILON, normalize=False, replicas=1,
            )
        try:
            failures = get_registry().counter(
                "sts3_replication_ship_failures_total"
            )
            probe = rng.normal(size=LENGTH) * 8.0
            report = sharded.insert(probe)  # ship -> follower dies -> respawn
            shard_id = report["shard"]
            assert failures.value(
                shard=str(shard_id), replica="0", kind="rpc"
            ) >= 1
            # respawns forked while the plan was installed die once more
            # on their first apply; a bounded number of rounds drains
            for _ in range(4):
                sharded.ship_replication()
                if shard_lag(sharded, shard_id) == [0]:
                    break
            assert shard_lag(sharded, shard_id) == [0]
            result = sharded.query(probe, k=1, read_preference="replica")
            assert result.complete
            assert result.neighbors[0].index == report["id"]
        finally:
            sharded.close()

    def test_aborted_promotion_falls_back_to_restart(self, tmp_path):
        from repro import faults
        from repro.faults import Fault, FaultPlan

        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        try:
            sharded.kill_worker(0)
            plan = FaultPlan([Fault("replication.promote", "crash", hit=1)], seed=2)
            with faults.inject(plan):
                healedish = sharded.query(rng.normal(size=LENGTH), k=3)
            # promotion aborted: the engine restarted from the archive
            # instead, so the answer is still complete and no epoch moved
            assert healedish.complete
            assert sharded.manifest["epochs"][0] == 0
        finally:
            sharded.close()


class TestFollowerMode:
    def test_follower_database_rejects_direct_writes(self):
        rng = np.random.default_rng(5)
        db = STS3Database(
            make_series(rng, 8), sigma=SIGMA, epsilon=EPSILON, normalize=False
        )
        try:
            db.set_follower(True)
            with pytest.raises(FollowerWriteError):
                db.insert(rng.normal(size=LENGTH))
            db.set_follower(False)
            db.insert(rng.normal(size=LENGTH))
            assert len(db) == 9
        finally:
            db.close()


class TestHygieneAndTooling:
    def test_reap_discards_replica_metric_labels(self, tmp_path):
        from repro.obs.metrics import get_registry

        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        try:
            sharded.insert(rng.normal(size=LENGTH))
            assert "sts3_replication_lag_records" in get_registry().to_prometheus()
            sharded._replicas.reap(0, 0)
            text = get_registry().to_prometheus()
            for line in text.splitlines():
                # the gauges forget the dead follower; counters are
                # history and keep their labels
                if line.startswith("sts3_replication_lag_"):
                    assert not (
                        'shard="0"' in line and 'replica="0"' in line
                    ), line
        finally:
            sharded.close()

    def test_check_wal_compare_accepts_real_mirror(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        directory = sharded.directory
        try:
            for _ in range(4):
                sharded.insert(rng.normal(size=LENGTH))
            primary = sharded.shard_wal_dir(0)
            sharded.ship_replication()
        finally:
            sharded.close()
        mirror = directory / replica_mirror_name(0, 0)
        tool = Path(__file__).resolve().parents[2] / "tools" / "check_wal.py"
        proc = subprocess.run(
            [sys.executable, str(tool), "--compare", str(primary), str(mirror)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 problems" in proc.stdout

    def test_replica_status_cli_renders_offline(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60, replicas=1)
        directory = sharded.directory
        try:
            sharded.insert(rng.normal(size=LENGTH))
        finally:
            sharded.close()
        from repro.cli import main

        assert main(["replica-status", str(directory)]) == 0

    def test_status_reports_replication(self, tmp_path):
        _, sharded, _ = build_pair(tmp_path, n_series=60)
        try:
            status = sharded.status()
            assert status["replicas"] == 2
            assert status["epochs"] == [0, 0]
            assert len(status["replication"]) == 2
            health = sharded.maintenance_status()
            assert health["replicas"] == 2
            assert health["replicas_live"] == 4
        finally:
            sharded.close()

    def test_manifest_records_replication_fields(self, tmp_path):
        _, sharded, _ = build_pair(tmp_path, n_series=60, replicas=1)
        directory = sharded.directory
        sharded.close()
        manifest = json.loads((directory / "shard-manifest.json").read_text())
        assert manifest["replicas"] == 1
        assert manifest["epochs"] == [0, 0]
        assert manifest["wal_dirs"] == [None, None]
