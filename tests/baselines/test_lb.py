"""Tests for LB_Keogh / LB_Improved and the exact DTW cascade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.dtw import dtw
from repro.baselines.lb import DTWCascade, envelope, lb_improved, lb_keogh
from repro.exceptions import ParameterError

pair_and_window = st.integers(min_value=2, max_value=32).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=st.floats(-5, 5, allow_nan=False)),
        arrays(np.float64, n, elements=st.floats(-5, 5, allow_nan=False)),
        st.integers(min_value=0, max_value=8),
    )
)


class TestEnvelope:
    def test_contains_series(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=50)
        lower, upper = envelope(series, window=5)
        assert (lower <= series).all()
        assert (series <= upper).all()

    def test_window_zero_is_identity(self):
        series = np.arange(10.0)
        lower, upper = envelope(series, 0)
        assert np.array_equal(lower, series)
        assert np.array_equal(upper, series)

    def test_monotone_in_window(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=40)
        l1, u1 = envelope(series, 2)
        l2, u2 = envelope(series, 6)
        assert (l2 <= l1).all()
        assert (u2 >= u1).all()

    def test_known_values(self):
        series = np.array([0.0, 3.0, 1.0])
        lower, upper = envelope(series, 1)
        assert upper.tolist() == [3.0, 3.0, 3.0]
        assert lower.tolist() == [0.0, 0.0, 1.0]

    def test_rejects_negative_window(self):
        with pytest.raises(ParameterError):
            envelope(np.zeros(5), -1)

    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            envelope(np.zeros((5, 2)), 1)


class TestLowerBounds:
    @given(pair_and_window)
    @settings(max_examples=40)
    def test_lb_keogh_admissible(self, abw):
        a, b, w = abw
        bound = lb_keogh(a, envelope(b, w))
        exact = dtw(a, b, window=w)
        assert bound <= exact + 1e-9

    @given(pair_and_window)
    @settings(max_examples=40)
    def test_lb_improved_admissible(self, abw):
        a, b, w = abw
        bound = lb_improved(a, b, envelope(b, w), w)
        exact = dtw(a, b, window=w)
        assert bound <= exact + 1e-9

    @given(pair_and_window)
    @settings(max_examples=40)
    def test_lb_improved_tightens_lb_keogh(self, abw):
        a, b, w = abw
        env = envelope(b, w)
        assert lb_improved(a, b, env, w) >= lb_keogh(a, env) - 1e-12

    def test_zero_for_identical(self):
        series = np.sin(np.linspace(0, 4, 40))
        env = envelope(series, 3)
        assert lb_keogh(series, env) == 0.0
        assert lb_improved(series, series, env, 3) == 0.0

    def test_length_mismatch_raises(self):
        env = envelope(np.zeros(5), 1)
        with pytest.raises(ParameterError):
            lb_keogh(np.zeros(6), env)
        with pytest.raises(ParameterError):
            lb_improved(np.zeros(6), np.zeros(5), env, 1)


class TestDTWCascade:
    def test_exactness(self):
        """The cascade must return the true banded-DTW 1-NN."""
        rng = np.random.default_rng(2)
        database = [rng.normal(size=32) for _ in range(40)]
        cascade = DTWCascade(database, window=3)
        for _ in range(5):
            query = rng.normal(size=32)
            idx, dist = cascade.nearest(query)
            brute = [(dtw(query, s, window=3), i) for i, s in enumerate(database)]
            best_dist, best_idx = min(brute)
            assert idx == best_idx
            assert dist == pytest.approx(best_dist, abs=1e-9)

    def test_prunes_on_structured_data(self):
        """On smooth structured data the bounds should fire."""
        t = np.linspace(0, 6, 64)
        database = [np.sin(t + phase) for phase in np.linspace(0, 3, 50)]
        cascade = DTWCascade(database, window=4)
        cascade.nearest(np.sin(t + 0.05))
        pruned = cascade.stats["lb_keogh_pruned"] + cascade.stats["lb_improved_pruned"]
        assert pruned > 0
        assert cascade.stats["dtw_computed"] < 50

    def test_empty_database_raises(self):
        with pytest.raises(ParameterError):
            DTWCascade([], window=2)

    def test_negative_window_raises(self):
        with pytest.raises(ParameterError):
            DTWCascade([np.zeros(4)], window=-2)
