"""Tests for the synthetic ECG stream substrate."""

import numpy as np
import pytest

from repro.data.ecg import ECGConfig, ecg_stream
from repro.exceptions import ParameterError


class TestECGConfig:
    def test_defaults_valid(self):
        ECGConfig()

    def test_rejects_tiny_beat(self):
        with pytest.raises(ParameterError):
            ECGConfig(beat_period=4)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ParameterError):
            ECGConfig(period_jitter=-0.1)

    def test_rejects_nonpositive_wander_period(self):
        with pytest.raises(ParameterError):
            ECGConfig(wander_period=0)


class TestECGStream:
    def test_length(self):
        assert len(ecg_stream(5000, seed=0)) == 5000

    def test_reproducible(self):
        assert np.array_equal(ecg_stream(2000, seed=9), ecg_stream(2000, seed=9))

    def test_seeds_differ(self):
        assert not np.array_equal(ecg_stream(2000, seed=1), ecg_stream(2000, seed=2))

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ParameterError):
            ecg_stream(0)

    def test_quasi_periodic(self):
        """The autocorrelation should peak near the beat period."""
        config = ECGConfig(beat_period=96, noise_std=0.0, wander_std=0.0)
        stream = ecg_stream(96 * 60, seed=3, config=config)
        centered = stream - stream.mean()
        ac = np.correlate(centered, centered, mode="full")[len(centered) - 1 :]
        ac /= ac[0]
        lag = 60 + np.argmax(ac[60:140])
        assert 80 <= lag <= 112  # within jitter of the nominal period

    def test_r_spikes_dominate(self):
        """The R-wave spikes should stand well above the baseline."""
        stream = ecg_stream(96 * 30, seed=4)
        assert stream.max() > 4 * stream.std()

    def test_finite(self):
        assert np.all(np.isfinite(ecg_stream(3000, seed=5)))
