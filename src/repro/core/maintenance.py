"""Background maintenance: LSM-style merges, memory budget, checkpoints.

The segmented engine (DESIGN.md §10) only stays fast if segments get
merged, but ``compact()`` is on-demand and stop-the-world.  This module
pays that cost off the hot path (DESIGN.md §15): a
:class:`MaintenanceEngine` thread watches the live-segment count and
WAL lag and, when triggered,

- runs **size-tiered merges** incrementally — one
  :func:`plan_merge` window at a time, built off-lock against a pinned
  :class:`~repro.core.catalog.CatalogSnapshot` and published via
  :meth:`STS3Database.publish_merge`'s atomic snapshot swap, so readers
  never block and answers stay bit-identical to the serial
  stop-the-world application of the same policy;
- enforces a **byte budget** over resident payloads/bitsets
  (``sts3_bitset_bytes_resident``), evicting the coldest segments
  first — evicted mmap-backed segments lazily re-fault from the
  archive;
- drives **checkpoint cadence**: once the WAL runs
  ``checkpoint_every`` records past the archive, the database is
  re-archived and redundant WAL generations retired.

The merge policy is a pure function of segment sizes and is
*confluent* with seals: sealing only appends on the right and never
creates a merge window left of an existing one, so applying
"merge the leftmost window, repeat" in the background interleaved with
inserts reaches the same normal form as applying it synchronously
after every insert.  That is what lets the benchmarks (and the
stateful tests) assert bit-identical answers against a serial
baseline at every quiesced sample point.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..exceptions import ParameterError
from ..faults import SimulatedCrash, fault_point
from ..obs import get_registry, span

__all__ = [
    "MaintenanceConfig",
    "MaintenanceEngine",
    "plan_merge",
    "tier_of",
]


@dataclass(frozen=True)
class MaintenanceConfig:
    """Tuning knobs for :class:`MaintenanceEngine` (docs/maintenance.md).

    ``max_segments`` is the live-segment trigger: the engine starts
    merging when the catalog exceeds it and merges to the tiering
    policy's fixpoint.  ``tier_base``/``fanout`` shape the size tiers
    (tier 0 holds segments smaller than ``tier_base`` series; each
    higher tier is ``fanout`` times larger) — exactly ``fanout``
    consecutive same-tier segments merge at a time.
    ``memory_budget_bytes`` caps resident payload/bitset bytes (None
    disables eviction).  ``checkpoint_every`` is the WAL lag, in
    records past the archive, that triggers a checkpoint to
    ``checkpoint_path`` (both must be set).  ``interval_s`` is the
    background poll period; ``auto_start`` starts the thread as soon
    as the engine is attached.
    """

    max_segments: int = 8
    tier_base: int = 64
    fanout: int = 4
    memory_budget_bytes: int | None = None
    checkpoint_every: int | None = None
    checkpoint_path: str | None = None
    interval_s: float = 0.05
    auto_start: bool = False

    def __post_init__(self):
        if self.max_segments < 1:
            raise ParameterError(
                f"max_segments must be >= 1, got {self.max_segments}"
            )
        if self.fanout < 2:
            raise ParameterError(f"fanout must be >= 2, got {self.fanout}")
        if self.tier_base < 1:
            raise ParameterError(f"tier_base must be >= 1, got {self.tier_base}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ParameterError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 0:
            raise ParameterError(
                f"memory_budget_bytes must be >= 0, got "
                f"{self.memory_budget_bytes}"
            )
        if self.interval_s <= 0:
            raise ParameterError(
                f"interval_s must be > 0, got {self.interval_s}"
            )


def tier_of(size: int, tier_base: int, fanout: int) -> int:
    """Size tier of a segment: 0 below ``tier_base``, +1 per ``fanout``×."""
    if size < tier_base:
        return 0
    tier, ceiling = 1, tier_base * fanout
    while size >= ceiling:
        tier += 1
        ceiling *= fanout
    return tier


def plan_merge(segments, config: MaintenanceConfig) -> tuple[int, int] | None:
    """The next merge window: leftmost ``fanout`` same-tier neighbours.

    A pure, deterministic function of the segment sizes — the
    confluence of background vs. stop-the-world maintenance rests on
    (a) this purity and (b) always taking the *leftmost* window, which
    a right-appending seal can never preempt.  Returns ``(start,
    stop)`` positions or None at the policy fixpoint.
    """
    fanout = config.fanout
    tiers = [tier_of(len(seg), config.tier_base, fanout) for seg in segments]
    for start in range(len(tiers) - fanout + 1):
        first = tiers[start]
        if all(t == first for t in tiers[start + 1:start + fanout]):
            return start, start + fanout
    return None


class MaintenanceEngine:
    """Background maintenance thread for one :class:`STS3Database`.

    All real work happens in three idempotent steps — merge to the
    policy fixpoint, evict down to the memory budget, checkpoint if the
    WAL lag crossed the cadence — callable synchronously
    (:meth:`run_pending` / :meth:`run_until_idle`, used by tests, the
    benchmarks' serial baseline, and offline ``sts3 maintain``) or
    driven by the engine thread (:meth:`start`).  :meth:`pause` gates
    new work and waits out the in-flight step; readers are never
    blocked either way (they pin catalog snapshots).
    """

    def __init__(self, db, config: MaintenanceConfig | None = None):
        self.db = db
        self.config = config or MaintenanceConfig()
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._paused = False
        # Serializes maintenance steps against pause() and synchronous
        # run_pending() calls; never held while sleeping.
        self._op_lock = threading.RLock()
        self.merges = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.checkpoints = 0
        self.last_error: BaseException | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the background thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="sts3-maintenance", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the background thread and wait for it (idempotent)."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    def pause(self) -> None:
        """Stop starting new maintenance work; waits out the in-flight step.

        The serving layer calls this at drain: queries already pin
        snapshots, but a paused engine guarantees the segment layout —
        and therefore latency — is steady while in-flight requests
        finish.  Metrics gauge ``sts3_maintenance_paused`` flips to 1.
        """
        self._paused = True
        with self._op_lock:
            pass  # barrier: any running step has completed
        get_registry().gauge(
            "sts3_maintenance_paused", "1 while the maintenance engine is paused"
        ).set(1)

    def resume(self) -> None:
        """Allow maintenance work again after :meth:`pause`."""
        self._paused = False
        get_registry().gauge(
            "sts3_maintenance_paused", "1 while the maintenance engine is paused"
        ).set(0)

    @property
    def running(self) -> bool:
        """True while the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def paused(self) -> bool:
        return self._paused

    # -- the work --------------------------------------------------------

    def _loop(self) -> None:
        registry = get_registry()
        while not self._stop_event.wait(self.config.interval_s):
            if self._paused:
                continue
            try:
                did = self.run_pending(triggered_only=True)
                outcome = "ok" if any(did.values()) else "noop"
            except SimulatedCrash as crash:
                # A simulated crash kills the whole process in the fault
                # harness; in-process it kills the engine thread, and
                # recovery tests take over from the journal.
                self.last_error = crash
                registry.counter(
                    "sts3_maintenance_runs_total",
                    "maintenance passes, by outcome",
                ).inc(outcome="crash")
                return
            except Exception as exc:  # keep maintaining on transient errors
                self.last_error = exc
                outcome = "error"
            registry.counter(
                "sts3_maintenance_runs_total", "maintenance passes, by outcome"
            ).inc(outcome=outcome)

    def run_pending(self, triggered_only: bool = False) -> dict:
        """One synchronous maintenance pass; returns what it did.

        With ``triggered_only`` (the background loop) merging only
        starts once the live-segment count exceeds ``max_segments``;
        without it (tests, ``sts3 maintain``) merges always run to the
        policy fixpoint, which is the quiesce step the bit-identical
        comparisons rely on.  Eviction and checkpointing are
        self-triggering either way.
        """
        did = {"merges": 0, "evicted_bytes": 0, "checkpointed": False}
        with self._op_lock:
            if triggered_only:
                backlog = len(self.db.catalog.segments) > self.config.max_segments
            else:
                backlog = True
            while backlog and not self._paused and not self._stop_event.is_set():
                if not self._merge_once():
                    break
                did["merges"] += 1
            did["evicted_bytes"] = self._evict_if_needed()
            did["checkpointed"] = self._checkpoint_if_due()
            self._update_gauges()
        return did

    def run_until_idle(self) -> dict:
        """Merge to the policy fixpoint + evict + checkpoint, now."""
        return self.run_pending(triggered_only=False)

    def _merge_once(self) -> bool:
        """Plan, build (off-lock), and publish one merge window.

        Returns False at the policy fixpoint.  A True return does not
        guarantee a publish: if a concurrent mutation moved the run,
        the pre-built segment is dropped and the caller replans — the
        retry loop converges because every successful mutation either
        shrinks the catalog or appends on the right of the window.
        """
        catalog = self.db.catalog
        snapshot = catalog.pin()
        try:
            window = plan_merge(snapshot.segments, self.config)
            if window is None:
                return False
            start, stop = window
            run = snapshot.segments[start:stop]
            with span(
                "maintenance.merge",
                segments=len(run),
                series=sum(len(seg) for seg in run),
            ):
                fault_point("maintenance.merge.build")
                merged = catalog.build_merged(run)
                published = self.db.publish_merge(run, merged)
            if published:
                self.merges += 1
                get_registry().counter(
                    "sts3_maintenance_merges_total",
                    "background tier merges published",
                ).inc()
            return True
        finally:
            catalog.release(snapshot)

    def _evict_if_needed(self) -> int:
        """Release the coldest segments until under the byte budget."""
        budget = self.config.memory_budget_bytes
        if not budget:
            return 0
        catalog = self.db.catalog
        snapshot = catalog.pin()
        try:
            resident = sum(seg.resident_bytes() for seg in snapshot.segments)
            if resident <= budget:
                return 0
            freed_total, evicted = 0, 0
            with span("maintenance.evict", resident=resident, budget=budget):
                fault_point("maintenance.evict")
                victims = sorted(
                    (seg for seg in snapshot.segments if seg.evictable),
                    key=lambda seg: seg.last_used,
                )
                for segment in victims:
                    freed = segment.release_payload()
                    if freed:
                        freed_total += freed
                        evicted += 1
                    if resident - freed_total <= budget:
                        break
            if freed_total:
                self.evictions += evicted
                self.evicted_bytes += freed_total
                registry = get_registry()
                registry.counter(
                    "sts3_maintenance_evictions_total",
                    "segments whose resident payload was released",
                ).inc(evicted)
                registry.counter(
                    "sts3_maintenance_evicted_bytes_total",
                    "resident bytes released by the memory budget",
                ).inc(freed_total)
            return freed_total
        finally:
            catalog.release(snapshot)

    def _checkpoint_if_due(self) -> bool:
        """Checkpoint once WAL lag crosses the configured cadence."""
        config = self.config
        wal = self.db.wal
        if wal is None:
            return False
        lag = wal.records_since_checkpoint
        if (
            config.checkpoint_every is None
            or config.checkpoint_path is None
            or lag < config.checkpoint_every
        ):
            return False
        with span("maintenance.checkpoint", wal_lag=lag):
            fault_point("maintenance.checkpoint")
            self.db.checkpoint(config.checkpoint_path)
        self.checkpoints += 1
        get_registry().counter(
            "sts3_maintenance_checkpoints_total",
            "checkpoints driven by WAL-lag cadence",
        ).inc()
        return True

    def _update_gauges(self) -> None:
        registry = get_registry()
        db = self.db
        registry.gauge(
            "sts3_maintenance_wal_lag",
            "WAL records journaled past the last checkpoint archive",
        ).set(db.wal.records_since_checkpoint if db.wal is not None else 0)
        registry.gauge(
            "sts3_maintenance_merge_backlog",
            "live segments beyond the configured max_segments trigger",
        ).set(max(0, len(db.catalog.segments) - self.config.max_segments))
        registry.gauge(
            "sts3_resident_bytes",
            "payload/bitset bytes currently resident across segments",
        ).set(sum(seg.resident_bytes() for seg in db.catalog.segments))

    # -- health ----------------------------------------------------------

    def status(self) -> dict:
        """Engine-side fields of ``STS3Database.maintenance_status``."""
        config = self.config
        if self._paused:
            state = "paused"
        elif self.running:
            state = "running"
        else:
            state = "idle"
        return {
            "max_segments": config.max_segments,
            "tier_base": config.tier_base,
            "fanout": config.fanout,
            "memory_budget_bytes": config.memory_budget_bytes,
            "checkpoint_every": config.checkpoint_every,
            "engine": state,
            "merges": self.merges,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "checkpoints": self.checkpoints,
            "last_error": repr(self.last_error) if self.last_error else None,
        }
