"""Tests for the R-tree and the MBE-indexed LCSS search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lcss import lcss_similarity
from repro.baselines.mbe import MBESearcher, query_mbe_rects, series_mbrs
from repro.baselines.rtree import Rect, RTree
from repro.exceptions import ParameterError

rect_strategy = st.tuples(
    st.floats(-100, 100), st.floats(0, 50), st.floats(-100, 100), st.floats(0, 50)
).map(lambda t: Rect(t[0], t[0] + t[1], t[2], t[2] + t[3]))


class TestRect:
    def test_intersects_self(self):
        r = Rect(0, 1, 0, 1)
        assert r.intersects(r)

    def test_disjoint(self):
        assert not Rect(0, 1, 0, 1).intersects(Rect(2, 3, 0, 1))
        assert not Rect(0, 1, 0, 1).intersects(Rect(0, 1, 2, 3))

    def test_touching_edges_intersect(self):
        assert Rect(0, 1, 0, 1).intersects(Rect(1, 2, 1, 2))

    def test_degenerate_raises(self):
        with pytest.raises(ParameterError):
            Rect(1, 0, 0, 1)

    def test_union(self):
        u = Rect.union([Rect(0, 1, 0, 1), Rect(2, 3, -1, 0.5)])
        assert (u.t_lo, u.t_hi, u.v_lo, u.v_hi) == (0, 3, -1, 1)

    @given(rect_strategy, rect_strategy)
    def test_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)


class TestRTree:
    def test_empty(self):
        tree = RTree([])
        assert tree.query_intersecting(Rect(0, 1, 0, 1)) == []
        assert tree.height() == 0

    def test_bad_fanout(self):
        with pytest.raises(ParameterError):
            RTree([], fanout=1)

    @given(st.lists(rect_strategy, min_size=1, max_size=80), rect_strategy)
    @settings(max_examples=40)
    def test_matches_brute_force(self, rects, probe):
        entries = [(r, i) for i, r in enumerate(rects)]
        tree = RTree(entries, fanout=4)
        got = sorted(tree.query_intersecting(probe))
        expected = sorted(i for i, r in enumerate(rects) if r.intersects(probe))
        assert got == expected

    def test_height_grows_with_size(self):
        rng = np.random.default_rng(0)
        entries = [
            (Rect(t, t + 1, v, v + 1), i)
            for i, (t, v) in enumerate(rng.uniform(0, 100, size=(300, 2)))
        ]
        tree = RTree(entries, fanout=4)
        assert tree.height() >= 3
        assert tree.size == 300


class TestSeriesMbrs:
    def test_covers_series(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=50)
        rects = series_mbrs(series, 16)
        assert len(rects) == 4  # 16+16+16+2
        for rect in rects:
            lo, hi = int(rect.t_lo), int(rect.t_hi)
            assert rect.v_lo == series[lo : hi + 1].min()
            assert rect.v_hi == series[lo : hi + 1].max()

    def test_validation(self):
        with pytest.raises(ParameterError):
            series_mbrs(np.zeros(4), 0)
        with pytest.raises(ParameterError):
            series_mbrs(np.zeros((4, 2)), 2)


class TestQueryMbe:
    def test_band_contains_query(self):
        rng = np.random.default_rng(2)
        query = rng.normal(size=40)
        rects = query_mbe_rects(query, delta=3, epsilon=0.5, segment_len=8)
        for rect in rects:
            lo, hi = int(rect.t_lo), int(rect.t_hi)
            assert (query[lo : hi + 1] >= rect.v_lo - 1e-12).all()
            assert (query[lo : hi + 1] <= rect.v_hi + 1e-12).all()

    def test_negative_epsilon_raises(self):
        with pytest.raises(ParameterError):
            query_mbe_rects(np.zeros(8), 1, -0.5, 4)


class TestMBESearcher:
    @pytest.fixture(scope="class")
    def database(self):
        rng = np.random.default_rng(3)
        t = np.linspace(0, 6, 64)
        return [
            np.sin(t * f) + rng.normal(0, 0.2, size=64)
            for f in np.linspace(0.5, 3.0, 30)
        ]

    def test_bound_admissible(self, database):
        searcher = MBESearcher(database, delta_fraction=0.1, epsilon=0.5)
        rng = np.random.default_rng(4)
        query = rng.normal(size=64)
        bounds = searcher.upper_bounds(query)
        delta = searcher._delta(len(query))
        for i, series in enumerate(database):
            from repro.baselines.lcss import lcss_length

            true = lcss_length(series, query, 0.5, delta)
            assert true <= bounds[i]

    def test_exactness(self, database):
        searcher = MBESearcher(database, delta_fraction=0.1, epsilon=0.5)
        rng = np.random.default_rng(5)
        delta = searcher._delta(64)
        for _ in range(4):
            query = rng.normal(size=64)
            idx, sim = searcher.nearest(query)
            brute = max(
                (lcss_similarity(s, query, 0.5, delta), -i)
                for i, s in enumerate(database)
            )
            assert sim == pytest.approx(brute[0])

    def test_prunes_on_structured_data(self, database):
        searcher = MBESearcher(database, delta_fraction=0.1, epsilon=0.25)
        searcher.nearest(database[0])
        assert searcher.stats["verified"] < len(database)
        assert searcher.stats["pruned"] > 0

    def test_empty_database_raises(self):
        with pytest.raises(ParameterError):
            MBESearcher([])
