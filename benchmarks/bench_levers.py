"""Benchmark: the three kernel-speed levers (DESIGN.md §13).

Runs the lever phases from :mod:`repro.bench.levers` — thread-parallel
segment execution, zero-copy mapped archive opens, the query-result
cache, and the combined serving workload — verifies every levered path
returns answers bit-identical to the plain path, writes
``BENCH_levers.json``, and appends one machine-tagged entry *per
phase* to ``BENCH_trajectory.json`` so each lever's trend stays
individually diffable across PRs.

CI runs one lever per matrix leg with a floor (see
``.github/workflows/ci.yml``)::

    PYTHONPATH=src python benchmarks/bench_levers.py \
        --levers parallel --workers 4 --min-parallel-speedup 2.0
    PYTHONPATH=src python benchmarks/bench_levers.py \
        --levers mmap --min-mmap-speedup 5.0
    PYTHONPATH=src python benchmarks/bench_levers.py \
        --levers cache --min-cache-speedup 20.0

The parallel floor only makes sense on a multi-core runner; the other
floors hold on any machine.  ``--levers`` defaults to every phase
including ``combined`` (the PR's ≥5x queries-per-second acceptance,
assert with ``--min-combined-speedup``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.bench.levers import run_lever_phases

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_levers.json"
DEFAULT_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

TRAJECTORY_SCHEMA = 1

#: the per-phase summary keys worth tracking across PRs.
_SUMMARY_KEYS = {
    "parallel": ("parallel_speedup", "queries_per_second", "workers"),
    "mmap": ("mmap_open_speedup", "eager_open_seconds", "mmap_open_seconds",
             "first_touch_seconds"),
    "cache": ("cache_hit_speedup", "uncached_seconds", "cached_seconds"),
    "combined": ("combined_speedup", "combined_queries_per_second",
                 "baseline_queries_per_second"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--levers", default="parallel,mmap,cache,combined",
                        help="comma-separated phases to run")
    parser.add_argument("--series", type=int, default=3000)
    parser.add_argument("--queries", type=int, default=32)
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--sigma", type=float, default=3)
    parser.add_argument("--epsilon", type=float, default=0.58)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=0,
                        help="thread workers for parallel/combined "
                             "(0 = cpu count)")
    parser.add_argument("--cache-bytes", type=int, default=8 << 20)
    parser.add_argument("--min-parallel-speedup", type=float, default=None)
    parser.add_argument("--min-mmap-speedup", type=float, default=None)
    parser.add_argument("--min-cache-speedup", type=float, default=None)
    parser.add_argument("--min-combined-speedup", type=float, default=None)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON result path ('-' to skip writing)")
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
                        help="append-only run history path ('-' to skip)")
    return parser


def append_trajectory(records: list[dict], args, path: Path) -> None:
    """Append one lever-phase entry per record (append-only history)."""
    history = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history["runs"] = loaded["runs"]
        except (json.JSONDecodeError, OSError):
            print(f"warning: {path} unreadable, starting a fresh trajectory")
    machine = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro": __version__,
    }
    for record in records:
        phase = record["phase"]
        summary = {
            key: record[key] for key in _SUMMARY_KEYS[phase] if key in record
        }
        summary["identical_neighbor_lists"] = record["identical_neighbor_lists"]
        history["runs"].append({
            "schema": TRAJECTORY_SCHEMA,
            "benchmark": "levers",
            "phase": phase,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "machine": machine,
            "workload": {
                "n_series": args.series,
                "n_queries": args.queries,
                "length": args.length,
                "sigma": args.sigma,
                "epsilon": args.epsilon,
                "k": args.k,
                "seed": args.seed,
            },
            "summary": summary,
        })
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended {len(records)} phase entries to {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    levers = [lever.strip() for lever in args.levers.split(",") if lever.strip()]
    print(
        f"lever phases: {', '.join(levers)} — {args.series} series x "
        f"{args.queries} queries, length {args.length}, k={args.k}",
        flush=True,
    )
    records = run_lever_phases(
        levers,
        n_series=args.series, n_queries=args.queries, length=args.length,
        sigma=args.sigma, epsilon=args.epsilon, k=args.k, seed=args.seed,
        repeats=args.repeats, workers=args.workers,
        cache_bytes=args.cache_bytes,
    )
    for record in records:
        phase = record["phase"]
        headline = {
            "parallel": f"{record.get('parallel_speedup', 0):.2f}x "
                        f"({record.get('workers')} workers)",
            "mmap": f"{record.get('mmap_open_speedup', 0):.2f}x open",
            "cache": f"{record.get('cache_hit_speedup', 0):.2f}x hit path",
            "combined": f"{record.get('combined_speedup', 0):.2f}x "
                        f"({record.get('combined_queries_per_second')} q/s)",
        }[phase]
        print(
            f"{phase:>8}: {headline}   "
            f"identical={record['identical_neighbor_lists']}"
        )

    result = {
        "benchmark": "levers",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "workload": {
            "n_series": args.series,
            "n_queries": args.queries,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
        },
        "phases": records,
    }
    if str(args.output) != "-":
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    if str(args.trajectory) != "-":
        append_trajectory(records, args, args.trajectory)

    by_phase = {record["phase"]: record for record in records}
    for record in records:
        if not record["identical_neighbor_lists"]:
            print(
                f"FAIL: {record['phase']} phase returned different neighbours",
                file=sys.stderr,
            )
            return 1
    floors = (
        ("parallel", "parallel_speedup", args.min_parallel_speedup),
        ("mmap", "mmap_open_speedup", args.min_mmap_speedup),
        ("cache", "cache_hit_speedup", args.min_cache_speedup),
        ("combined", "combined_speedup", args.min_combined_speedup),
    )
    for phase, key, floor in floors:
        if floor is None or phase not in by_phase:
            continue
        measured = by_phase[phase][key]
        if measured < floor:
            print(
                f"FAIL: {phase} {key} {measured:.2f}x below required "
                f"{floor:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
