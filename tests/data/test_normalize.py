"""Unit and property tests for z-normalization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.normalize import is_z_normalized, z_normalize, z_normalize_all

finite_series = arrays(
    np.float64,
    st.integers(min_value=2, max_value=64),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestZNormalize:
    def test_mean_zero_std_one(self):
        out = z_normalize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert abs(out.mean()) < 1e-12
        assert abs(out.std() - 1.0) < 1e-12

    def test_constant_series_maps_to_zeros(self):
        out = z_normalize(np.full(10, 42.0))
        assert np.array_equal(out, np.zeros(10))

    def test_single_point_is_constant(self):
        assert np.array_equal(z_normalize(np.array([5.0])), np.array([0.0]))

    def test_does_not_mutate_input(self):
        original = np.array([1.0, 5.0, 9.0])
        backup = original.copy()
        z_normalize(original)
        assert np.array_equal(original, backup)

    def test_multidim_normalizes_each_column(self):
        series = np.column_stack([np.arange(10.0), np.full(10, 3.0)])
        out = z_normalize(series)
        assert abs(out[:, 0].mean()) < 1e-12
        assert abs(out[:, 0].std() - 1.0) < 1e-12
        # constant second column becomes zeros, not NaNs
        assert np.array_equal(out[:, 1], np.zeros(10))

    def test_shift_and_scale_invariance(self):
        base = np.array([0.3, -1.2, 2.5, 0.0, 1.1])
        shifted = 7.0 + 3.5 * base
        assert np.allclose(z_normalize(base), z_normalize(shifted))

    @given(finite_series)
    def test_output_is_normalized_or_zero(self, series):
        out = z_normalize(series)
        assert is_z_normalized(out, tolerance=1e-6)

    @given(finite_series)
    def test_idempotent(self, series):
        once = z_normalize(series)
        twice = z_normalize(once)
        assert np.allclose(once, twice, atol=1e-9)


class TestIsZNormalized:
    def test_accepts_normalized(self):
        assert is_z_normalized(z_normalize(np.array([1.0, 2.0, 5.0])))

    def test_rejects_raw(self):
        assert not is_z_normalized(np.array([10.0, 20.0, 35.0]))

    def test_accepts_all_zero(self):
        assert is_z_normalized(np.zeros(5))


class TestZNormalizeAll:
    def test_normalizes_every_series(self):
        batch = [np.array([1.0, 2.0, 3.0]), np.array([10.0, 10.0, 10.0])]
        out = z_normalize_all(batch)
        assert len(out) == 2
        assert all(is_z_normalized(s) for s in out)

    def test_empty_iterable(self):
        assert z_normalize_all([]) == []
