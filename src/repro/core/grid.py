"""Grid division of the time-value plane (paper Section 3.2, Section 5.1).

A :class:`Bound` is the minimum bounding rectangle of a series database
(Definition 2); a :class:`Grid` divides that bound into cells and
assigns every point of a series to a cell ID (Definition 3, Equation 1).

Parameter-naming note (see DESIGN.md §2): the paper's prose and formulas
disagree about which of σ/ε lies on which axis; we follow the
*experimental* usage, which every reported number depends on:

- ``sigma`` — cell width along the **time** axis, in samples.
- ``epsilon`` — cell height along the **value** axis, in value units.

Cell IDs are 0-based here (the paper uses 1-based); Equation 1 becomes
``id = row * n_columns + column``.  For a ``d``-dimensional series
(Section 5.1) the value axes are digitized independently and the ID is
the mixed-radix combination of the time column and all value rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import GridError, ParameterError

__all__ = ["Bound", "Grid"]


def _as_points(series: np.ndarray) -> np.ndarray:
    """View a ``(n,)`` or ``(n, d)`` series as an ``(n, d)`` value array."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        return arr[:, None]
    if arr.ndim == 2:
        return arr
    raise GridError(f"a time series must be 1-D or 2-D, got shape {arr.shape}")


@dataclass(frozen=True)
class Bound:
    """Minimum bounding rectangle of a series database (Definition 2).

    The time axis runs over sample indices ``t_min .. t_max``; the value
    axes over ``x_min[d] .. x_max[d]`` per dimension.
    """

    t_min: float
    t_max: float
    x_min: tuple[float, ...]
    x_max: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.t_max < self.t_min:
            raise GridError(f"empty time bound: [{self.t_min}, {self.t_max}]")
        if len(self.x_min) != len(self.x_max):
            raise GridError("x_min and x_max must have equal dimensionality")
        for lo, hi in zip(self.x_min, self.x_max):
            if hi < lo:
                raise GridError(f"empty value bound: [{lo}, {hi}]")

    @property
    def n_dims(self) -> int:
        """Number of value dimensions."""
        return len(self.x_min)

    @staticmethod
    def of_database(database: list[np.ndarray], value_padding: float = 0.0) -> "Bound":
        """Scan all points of ``database`` for the bounding rectangle.

        ``value_padding`` widens the value range on both sides; the
        paper recommends "a large bound" (Section 5.3.2) so that
        out-of-bound series stay rare under updates.
        """
        if not database:
            raise GridError("cannot bound an empty database")
        if value_padding < 0:
            raise ParameterError("value_padding must be non-negative")
        points = [_as_points(s) for s in database]
        n_dims = points[0].shape[1]
        if any(p.shape[1] != n_dims for p in points):
            raise GridError("all series must share the same dimensionality")
        t_max = max(p.shape[0] for p in points) - 1
        x_min = np.min([p.min(axis=0) for p in points], axis=0) - value_padding
        x_max = np.max([p.max(axis=0) for p in points], axis=0) + value_padding
        return Bound(0.0, float(t_max), tuple(x_min.tolist()), tuple(x_max.tolist()))

    @staticmethod
    def of_series(series: np.ndarray) -> "Bound":
        """Bound of a single series (used for out-point handling)."""
        return Bound.of_database([series])

    def contains(self, series: np.ndarray) -> np.ndarray:
        """Boolean mask: which points of ``series`` lie inside the bound.

        Time stamps are the sample indices; a point is inside when its
        index is within ``[t_min, t_max]`` and every value dimension is
        within its range.
        """
        points = _as_points(series)
        if points.shape[1] != self.n_dims:
            raise GridError(
                f"series has {points.shape[1]} dims, bound has {self.n_dims}"
            )
        t = np.arange(points.shape[0], dtype=np.float64)
        mask = (t >= self.t_min) & (t <= self.t_max)
        lo = np.asarray(self.x_min)
        hi = np.asarray(self.x_max)
        mask &= np.all((points >= lo) & (points <= hi), axis=1)
        return mask

    def covers(self, other: "Bound") -> bool:
        """True when ``other`` lies entirely inside this bound."""
        if other.n_dims != self.n_dims:
            return False
        return (
            self.t_min <= other.t_min
            and self.t_max >= other.t_max
            and all(a <= b for a, b in zip(self.x_min, other.x_min))
            and all(a >= b for a, b in zip(self.x_max, other.x_max))
        )

    def union(self, other: "Bound") -> "Bound":
        """The smallest bound covering both ``self`` and ``other``."""
        if other.n_dims != self.n_dims:
            raise GridError(
                f"cannot union a {self.n_dims}-dim bound with {other.n_dims} dims"
            )
        return Bound(
            min(self.t_min, other.t_min),
            max(self.t_max, other.t_max),
            tuple(min(a, b) for a, b in zip(self.x_min, other.x_min)),
            tuple(max(a, b) for a, b in zip(self.x_max, other.x_max)),
        )


class Grid:
    """Division of a :class:`Bound` into cells with integer IDs.

    Construct either from cell sizes (:meth:`from_cell_sizes`, the
    paper's σ/ε parameterization) or from a target resolution
    (:meth:`from_resolution`, used by the approximate algorithm's
    ``scale × scale`` coarse grids).  Cells are ``col_width`` samples
    wide and ``row_heights[d]`` tall; when the bound's span is not an
    exact multiple of the cell size the final cell is partial, exactly
    as in the paper's integer division (Algorithm 1, line 2).
    """

    def __init__(self, bound: Bound, col_width: float, row_heights: tuple[float, ...]):
        if col_width <= 0:
            raise ParameterError(f"col_width must be positive, got {col_width}")
        if not row_heights or any(h <= 0 for h in row_heights):
            raise ParameterError(f"row heights must be positive, got {row_heights}")
        if len(row_heights) != bound.n_dims:
            raise GridError(
                f"{len(row_heights)} row heights for a {bound.n_dims}-dim bound"
            )
        self.bound = bound
        self.col_width = float(col_width)
        self.row_heights = tuple(float(h) for h in row_heights)
        self.n_columns = int(np.floor((bound.t_max - bound.t_min) / col_width)) + 1
        self.n_rows = tuple(
            int(np.floor((hi - lo) / h)) + 1
            for lo, hi, h in zip(bound.x_min, bound.x_max, self.row_heights)
        )
        self._x_lo = np.asarray(bound.x_min, dtype=np.float64)
        self._heights = np.asarray(self.row_heights, dtype=np.float64)
        self._rows_arr = np.asarray(self.n_rows, dtype=np.int64)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def from_cell_sizes(bound: Bound, sigma: float, epsilon: float) -> "Grid":
        """Grid with cells ``sigma`` samples wide and ``epsilon`` tall.

        This is Algorithm 1's parameterization.  The same ``epsilon``
        applies to every value dimension (the paper's
        ``α_x = α_y = α_xy`` choice for multi-dimensional series; see
        Section 5.1's overfitting discussion for why one shared value
        parameter is the default).
        """
        if sigma <= 0:
            raise ParameterError(f"sigma must be positive, got {sigma}")
        if epsilon <= 0:
            raise ParameterError(f"epsilon must be positive, got {epsilon}")
        return Grid(bound, sigma, (epsilon,) * bound.n_dims)

    @staticmethod
    def from_axis_cell_sizes(
        bound: Bound, sigma: float, epsilons: tuple[float, ...]
    ) -> "Grid":
        """Grid with a separate cell height per value dimension.

        Section 5.1 discusses trading one shared value parameter
        (``α_x = α_y``) against per-axis parameters: separate heights
        can help when the axes have different data/noise distributions,
        at the cost of a larger tuning space and overfitting risk.
        """
        if sigma <= 0:
            raise ParameterError(f"sigma must be positive, got {sigma}")
        if len(epsilons) != bound.n_dims:
            raise ParameterError(
                f"{len(epsilons)} epsilons for a {bound.n_dims}-dim bound"
            )
        if any(e <= 0 for e in epsilons):
            raise ParameterError(f"epsilons must be positive, got {epsilons}")
        return Grid(bound, sigma, tuple(float(e) for e in epsilons))

    @staticmethod
    def from_resolution(bound: Bound, scale: int) -> "Grid":
        """Grid of ``scale`` columns × ``scale`` rows per value dim.

        Used for the approximate algorithm's coarse representations
        (Section 4.3).  Cell sizes are the bound spans divided by
        ``scale`` (a degenerate zero span collapses to one row/column).
        """
        if scale < 1:
            raise ParameterError(f"scale must be >= 1, got {scale}")
        t_span = bound.t_max - bound.t_min
        # A hair over span/scale so floor(span / width) + 1 == scale.
        col_width = t_span / scale * (1 + 1e-12) if t_span > 0 else 1.0
        heights = tuple(
            max((hi - lo) / scale * (1 + 1e-12), np.finfo(float).tiny)
            if hi > lo
            else 1.0
            for lo, hi in zip(bound.x_min, bound.x_max)
        )
        grid = Grid(bound, max(col_width, np.finfo(float).tiny), heights)
        # Subnormal spans defeat the fudge factor's rounding; clamp the
        # derived counts so a scale-s grid never exceeds s cells per axis.
        grid.n_columns = min(grid.n_columns, scale)
        grid.n_rows = tuple(min(r, scale) for r in grid.n_rows)
        grid._rows_arr = np.asarray(grid.n_rows, dtype=np.int64)
        return grid

    # -- geometry -------------------------------------------------------

    @property
    def n_dims(self) -> int:
        """Number of value dimensions the grid divides."""
        return self.bound.n_dims

    @property
    def n_cells(self) -> int:
        """Total number of cells (``maxNumber`` in Algorithm 6)."""
        total = self.n_columns
        for r in self.n_rows:
            total *= r
        return total

    def columns_of(self, series: np.ndarray) -> np.ndarray:
        """Time-axis column index of every point, clamped to the grid."""
        n = _as_points(series).shape[0]
        t = np.arange(n, dtype=np.float64)
        cols = np.floor((t - self.bound.t_min) / self.col_width).astype(np.int64)
        return np.clip(cols, 0, self.n_columns - 1)

    def rows_of(self, series: np.ndarray) -> np.ndarray:
        """Value-axis row index per point and dimension, shape ``(n, d)``."""
        points = _as_points(series)
        if points.shape[1] != self.n_dims:
            raise GridError(
                f"series has {points.shape[1]} dims, grid has {self.n_dims}"
            )
        rows = np.floor((points - self._x_lo) / self._heights).astype(np.int64)
        return np.clip(rows, 0, self._rows_arr - 1)

    def cell_ids_per_point(self, series: np.ndarray) -> np.ndarray:
        """Cell ID of each point (Equation 1, 0-based, mixed radix).

        For one value dimension: ``id = row * n_columns + column``.
        Points outside the bound are clamped onto the border cells;
        callers with genuinely out-of-bound query points should use
        :func:`repro.core.setrep.transform_query` (Algorithm 6) instead.
        """
        columns = self.columns_of(series)
        rows = self.rows_of(series)
        ids = np.zeros(len(columns), dtype=np.int64)
        for d in range(self.n_dims - 1, -1, -1):
            ids = ids * self.n_rows[d] + rows[:, d]
        return ids * self.n_columns + columns

    def decode_cell(self, cell_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Invert :meth:`cell_ids_per_point`: IDs → (columns, rows).

        Returns ``(columns, rows)`` with rows of shape ``(n, d)``.
        """
        ids = np.asarray(cell_ids, dtype=np.int64)
        columns = ids % self.n_columns
        rest = ids // self.n_columns
        rows = np.empty((len(ids), self.n_dims), dtype=np.int64)
        for d in range(self.n_dims):
            rows[:, d] = rest % self.n_rows[d]
            rest = rest // self.n_rows[d]
        return columns, rows

    def zones_of_cells(self, cell_ids: np.ndarray, scale: int) -> np.ndarray:
        """Map cell IDs to zone IDs for a ``scale × scale`` zone grid.

        Zones partition the plane for the pruning algorithm
        (Section 4.2).  Any partition of cells into zones yields an
        admissible intersection upper bound; we use the natural one
        that blocks columns into ``scale`` groups and (combined) rows
        into ``scale`` groups, giving ``scale²`` zones as in the paper.
        """
        if scale < 1:
            raise ParameterError(f"scale must be >= 1, got {scale}")
        columns, rows = self.decode_cell(cell_ids)
        zone_col = columns * scale // self.n_columns
        combined = np.zeros(len(columns), dtype=np.int64)
        total_rows = 1
        for d in range(self.n_dims - 1, -1, -1):
            combined = combined * self.n_rows[d] + rows[:, d]
            total_rows *= self.n_rows[d]
        zone_row = combined * scale // total_rows
        return zone_row * scale + zone_col

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Grid(n_columns={self.n_columns}, n_rows={self.n_rows}, "
            f"col_width={self.col_width:g}, row_heights={self.row_heights})"
        )
