"""Isolation for observability tests: no tracer/registry state leaks."""

from __future__ import annotations

import pytest

from repro.obs import NOOP, MetricsRegistry, set_registry, set_tracer


@pytest.fixture(autouse=True)
def _isolated_observability():
    """Fresh registry + no-op tracer around every test in this package."""
    previous_registry = set_registry(MetricsRegistry())
    previous_tracer = set_tracer(NOOP)
    try:
        yield
    finally:
        set_registry(previous_registry)
        set_tracer(previous_tracer)
