"""Regression: compression_rate's denominator is the paper's |D|.

Section 7.4.5 defines the compression rate as |searchSet after
filtering| / |D|.  ``SearchStats.compression_rate`` divides by
``candidates`` — which is only equivalent if every search variant sets
``candidates`` to the full database size.  These tests pin that
invariant for all four searchers, the batch engine, and the
update-buffer merge path, so any future searcher that reports a
pre-filtered candidate pool (silently inflating the rate) fails here.
"""

import numpy as np
import pytest

from repro import STS3Database


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(7)
    return STS3Database(
        [rng.normal(size=64) for _ in range(40)], sigma=3, epsilon=0.5
    )


@pytest.fixture(scope="module")
def query():
    return np.random.default_rng(8).normal(size=64)


@pytest.mark.parametrize("method", ["naive", "index", "pruning", "approximate"])
def test_candidates_is_database_size(db, query, method):
    result = db.query(query, k=3, method=method)
    assert result.stats.candidates == len(db.series)


@pytest.mark.parametrize("method", ["naive", "index", "pruning", "approximate"])
def test_compression_rate_matches_paper_definition(db, query, method):
    result = db.query(query, k=3, method=method)
    expected = result.stats.final_candidates / len(db.series)
    assert result.stats.compression_rate == pytest.approx(expected)


def test_batch_engine_candidates_is_database_size(db, query):
    (result,) = db.query_batch([query], k=3, method="index")
    assert result.stats.candidates == len(db.series)


def test_buffer_merge_extends_denominator_to_full_collection(db, query):
    """With buffered series, |D| includes them — and so does candidates."""
    rng = np.random.default_rng(9)
    small = STS3Database(
        [rng.normal(size=32) for _ in range(10)],
        sigma=3,
        epsilon=0.5,
        buffer_capacity=8,
    )
    # An out-of-bound series lands in the buffer without a flush.
    small.insert(np.concatenate([rng.normal(size=31), [50.0]]))
    assert len(small.buffer) == 1
    result = small.query(rng.normal(size=32), k=3, method="index")
    assert result.stats.candidates == len(small.series) + len(small.buffer)
    assert result.stats.compression_rate == pytest.approx(
        result.stats.final_candidates / len(small)
    )


def test_approximate_compression_reflects_filtering(db, query):
    """The approximate variant is the one the paper measures: its
    final_candidates is the post-filter search set, so the rate is
    well below 1 on a database larger than k."""
    result = db.query(query, k=3, method="approximate")
    assert 0 < result.stats.compression_rate < 1
