"""Opt-in profiling hooks for the searcher stages.

Two granularities, both strictly opt-in (nothing here runs unless a
caller asks):

- :class:`StageTimes` — a ``perf_counter_ns`` accumulator for
  coarse-grained stage timing without a tracer: cheap enough to wrap
  around individual searcher stages in a tight experiment loop, and
  the shape benchmarks want (a name → seconds dict).
- :func:`profile_callable` / :class:`ProfiledBlock` — full ``cProfile``
  function-level profiles for the "why is this stage slow" follow-up,
  rendered to a ``pstats`` text table.

Convenience entry point :func:`profile_query` profiles one
``STS3Database.query`` call end to end::

    result, report = profile_query(db, query, k=5, method="index")
    print(report)
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from typing import Callable

__all__ = ["StageTimes", "ProfiledBlock", "profile_callable", "profile_query"]


class StageTimes:
    """Accumulate wall-clock nanoseconds per named stage.

    ::

        times = StageTimes()
        with times.stage("filter"):
            counts = searcher.intersection_counts(qs)
        with times.stage("refine"):
            ...
        times.seconds()  # {"filter": ..., "refine": ...}

    Re-entering a name accumulates.  Not thread-safe; use one instance
    per thread (the tracer handles the concurrent case).
    """

    def __init__(self) -> None:
        self._totals_ns: dict[str, int] = {}
        self._counts: dict[str, int] = {}

    def stage(self, name: str) -> "_Stage":
        """Context manager timing one pass through stage ``name``."""
        return _Stage(self, name)

    def add_ns(self, name: str, elapsed_ns: int) -> None:
        """Record ``elapsed_ns`` against ``name`` directly."""
        self._totals_ns[name] = self._totals_ns.get(name, 0) + elapsed_ns
        self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self) -> dict[str, float]:
        """Accumulated seconds per stage, sorted by name."""
        return {k: v / 1e9 for k, v in sorted(self._totals_ns.items())}

    def counts(self) -> dict[str, int]:
        """Number of timed passes per stage, sorted by name."""
        return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        """Drop all accumulated timings."""
        self._totals_ns.clear()
        self._counts.clear()


class _Stage:
    __slots__ = ("_times", "_name", "_start")

    def __init__(self, times: StageTimes, name: str):
        self._times = times
        self._name = name
        self._start = 0

    def __enter__(self) -> "_Stage":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._times.add_ns(self._name, time.perf_counter_ns() - self._start)
        return False


class ProfiledBlock:
    """``cProfile`` a block of code; render the profile afterwards.

    ::

        with ProfiledBlock() as prof:
            db.query_batch(queries, k=10)
        print(prof.text(limit=15))
    """

    def __init__(self) -> None:
        self.profile = cProfile.Profile()

    def __enter__(self) -> "ProfiledBlock":
        self.profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.profile.disable()
        return False

    def text(self, sort: str = "cumulative", limit: int = 25) -> str:
        """The profile as a ``pstats`` table string."""
        buf = io.StringIO()
        stats = pstats.Stats(self.profile, stream=buf)
        stats.sort_stats(sort).print_stats(limit)
        return buf.getvalue()


def profile_callable(
    fn: Callable[[], object], sort: str = "cumulative", limit: int = 25
) -> tuple[object, str]:
    """Run ``fn()`` under cProfile; return ``(result, report_text)``."""
    with ProfiledBlock() as prof:
        result = fn()
    return result, prof.text(sort=sort, limit=limit)


def profile_query(db, series, sort: str = "cumulative", limit: int = 25, **query_kwargs):
    """Profile one ``db.query(series, **query_kwargs)`` call.

    Returns ``(QueryResult, report_text)``; behind ``sts3 query
    --profile``.
    """
    return profile_callable(
        lambda: db.query(series, **query_kwargs), sort=sort, limit=limit
    )
