"""Worker-count resolution and fork hygiene for the shared thread pools.

``resolve_workers`` is the single knob-decoding point for every
parallel path (planner fan-out, shard workers, CLI ``--workers``), so
its contract — affinity-aware ``0``, ``STS3_MAX_WORKERS`` cap,
validation — is pinned here.  The fork-hygiene tests cover what the
sharded engine depends on: a forked worker process must not inherit a
parent thread pool that has no threads behind it.
"""

import os
import threading

import pytest

from repro.core.executor import (
    MAX_WORKERS_ENV,
    ExecutorPool,
    _pools,
    _reset_pools_after_fork,
    available_cpu_count,
    get_pool,
    resolve_workers,
)


class TestAvailableCpuCount:
    def test_at_least_one(self):
        assert available_cpu_count() >= 1

    def test_respects_affinity_mask(self):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        assert available_cpu_count() == len(os.sched_getaffinity(0))

    def test_never_above_machine_count(self):
        assert available_cpu_count() <= (os.cpu_count() or 1)


class TestEnvCap:
    def test_cap_applies_to_explicit_counts(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "2")
        assert resolve_workers(8) == 2

    def test_cap_applies_to_zero(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert resolve_workers(0) == 1

    def test_cap_never_raises_the_request(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "64")
        assert resolve_workers(3) == 3

    def test_serial_default_ignores_cap(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "4")
        assert resolve_workers(None) == 1

    def test_blank_env_is_unset(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "  ")
        assert resolve_workers(5) == 5

    @pytest.mark.parametrize("bad", ["zero", "0", "-3", "1.5"])
    def test_invalid_cap_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(MAX_WORKERS_ENV, bad)
        with pytest.raises(ValueError):
            resolve_workers(4)


class TestForkHygiene:
    def test_reset_drops_started_executor(self):
        pool = ExecutorPool(2)
        assert pool.map_ordered(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]
        assert pool._executor is not None
        old_lock = pool._lock
        pool._reset_after_fork()
        assert pool._executor is None
        assert pool._lock is not old_lock
        # the pool restarts cleanly after the reset
        assert pool.map_ordered(lambda x: x + 1, [1, 2]) == [2, 3]
        pool.shutdown()

    def test_registry_reset_covers_every_pool(self):
        pool = get_pool(3)
        pool.map_ordered(lambda x: x, [1])
        _reset_pools_after_fork()
        assert all(p._executor is None for p in _pools.values())
        # identity is preserved — the registry is reset, not rebuilt
        assert get_pool(3) is pool

    def test_forked_child_can_run_pool_work(self):
        if not hasattr(os, "fork"):
            pytest.skip("platform has no fork")
        pool = get_pool(2)
        pool.map_ordered(lambda x: x, [1])  # start threads pre-fork
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child process
            status = 1
            try:
                child_pool = get_pool(2)
                if child_pool._executor is None:  # at-fork hook fired
                    result = child_pool.map_ordered(lambda x: x * 2, [21])
                    if result == [42]:
                        status = 0
            finally:
                os.write(write_fd, bytes([status]))
                os._exit(status)
        os.close(write_fd)
        try:
            verdict = os.read(read_fd, 1)
        finally:
            os.close(read_fd)
            os.waitpid(pid, 0)
        assert verdict == b"\x00"
