"""The documented public API must stay importable and complete."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        major, *_ = repro.__version__.split(".")
        assert int(major) >= 1

    def test_readme_quickstart_symbols(self):
        """Everything the README quickstart imports must exist."""
        from repro import STS3Database  # noqa: F401
        from repro.data import ecg_stream, make_workload  # noqa: F401


SUBMODULES = [
    "repro.core",
    "repro.core.grid",
    "repro.core.setrep",
    "repro.core.jaccard",
    "repro.core.naive",
    "repro.core.indexed",
    "repro.core.pruning",
    "repro.core.approximate",
    "repro.core.database",
    "repro.core.segment",
    "repro.core.catalog",
    "repro.core.planner",
    "repro.core.tuning",
    "repro.core.executor",
    "repro.core.rpc",
    "repro.core.shard",
    "repro.baselines",
    "repro.baselines.ed",
    "repro.baselines.dtw",
    "repro.baselines.lb",
    "repro.baselines.fastdtw",
    "repro.baselines.lcss",
    "repro.baselines.ftse",
    "repro.baselines.knn",
    "repro.data",
    "repro.data.ecg",
    "repro.data.ucr_like",
    "repro.data.registry",
    "repro.data.loader",
    "repro.data.workloads",
    "repro.bench",
]


@pytest.mark.parametrize("module_name", SUBMODULES)
def test_submodule_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"


@pytest.mark.parametrize("module_name", SUBMODULES)
def test_submodule_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


def test_public_functions_documented():
    """Every name a subpackage exports carries a docstring."""
    for module_name in ("repro.core", "repro.baselines", "repro.data"):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj):
                assert obj.__doc__, f"{module_name}.{name} has no docstring"
