"""Tests for the ``sts3`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def ucr_file(tmp_path):
    rng = np.random.default_rng(0)
    lines = []
    for i in range(12):
        label = i % 2
        values = ",".join(f"{v:.4f}" for v in rng.normal(size=32))
        lines.append(f"{label},{values}")
    path = tmp_path / "toy"
    path.write_text("\n".join(lines))
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.series == 200
        assert args.k == 3

    def test_query_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "f", "--method", "magic"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "STS3" in out or "sts3" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "CBF" in out
        assert "NIFE" in out

    def test_demo(self, capsys):
        assert main(["demo", "--series", "30", "--length", "64", "--k", "2"]) == 0
        out = capsys.readouterr().out
        for method in ("naive", "index", "pruning", "approximate"):
            assert method in out

    def test_query(self, ucr_file, capsys):
        assert main(["query", str(ucr_file), "--k", "3", "--sigma", "2"]) == 0
        out = capsys.readouterr().out
        assert "Jaccard" in out
        assert out.count("#") >= 3

    def test_query_bad_index(self, ucr_file, capsys):
        assert main(["query", str(ucr_file), "--query-index", "99"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_query_missing_file(self, tmp_path):
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            main(["query", str(tmp_path / "nope")])

    def test_batch(self, ucr_file, capsys):
        assert main(["batch", str(ucr_file), "--queries", "4", "--k", "2",
                     "--sigma", "2"]) == 0
        out = capsys.readouterr().out
        assert "queries/s" in out
        assert "aggregate:" in out
        assert out.count("query ") >= 4

    def test_batch_too_many_queries(self, ucr_file, capsys):
        assert main(["batch", str(ucr_file), "--queries", "99"]) == 2
        assert "--queries" in capsys.readouterr().err

    def test_query_trace(self, ucr_file, capsys):
        assert main(["query", str(ucr_file), "--k", "2", "--sigma", "2",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace (ms, nested):" in out
        for stage in ("query", "transform", "refine", "select_topk"):
            assert stage in out
        assert "Jaccard" in out  # the normal result still prints

    def test_query_trace_restores_noop(self, ucr_file, capsys):
        from repro.obs import NOOP, get_tracer

        main(["query", str(ucr_file), "--trace"])
        assert get_tracer() is NOOP

    def test_query_profile(self, ucr_file, capsys):
        assert main(["query", str(ucr_file), "--k", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "function calls" in out  # the pstats report

    def test_batch_metrics_json_file(self, ucr_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(["batch", str(ucr_file), "--queries", "4", "--k", "2",
                     "--sigma", "2", "--metrics-json", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["command"] == "batch"
        assert report["queries"] == 4
        assert report["wall_seconds"] > 0
        stages = report["stages_seconds"]
        for stage in ("transform", "filter", "refine", "select_topk", "merge"):
            assert stage in stages
        # per-stage timings account for the bulk of wall-clock
        assert 0 < report["stage_coverage"] <= 1.1
        counters = report["metrics"]["counters"]
        assert counters['sts3_batch_queries_total{method="index"}'] >= 4.0

    def test_batch_metrics_json_stdout(self, ucr_file, capsys):
        import json

        assert main(["batch", str(ucr_file), "--queries", "3", "--k", "2",
                     "--sigma", "2", "--metrics-json", "-"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        report = json.loads(payload)
        assert report["queries"] == 3
        assert "aggregate_stats" in report

    def test_batch_trace(self, ucr_file, capsys):
        assert main(["batch", str(ucr_file), "--queries", "3", "--k", "2",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "trace (ms, nested):" in out
        assert "query_batch" in out

    def test_join(self, ucr_file, capsys):
        assert main(["join", str(ucr_file), "--threshold", "0.2", "--sigma", "2"]) == 0
        out = capsys.readouterr().out
        assert "pairs at J >=" in out

    def test_join_strict_threshold_finds_nothing(self, ucr_file, capsys):
        assert main(["join", str(ucr_file), "--threshold", "0.999"]) == 0
        assert "0 pairs" in capsys.readouterr().out

    def test_inspect(self, tmp_path, capsys):
        from repro import STS3Database
        from repro.core import save_database

        rng = np.random.default_rng(5)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(12)],
            sigma=2, epsilon=0.5, normalize=False, buffer_capacity=2,
        )
        spiked = rng.normal(size=32)
        spiked[0] = 50.0
        db.insert(spiked)
        db.insert(spiked + 10.0)  # fills the buffer: seals a delta segment
        path = tmp_path / "db.npz"
        save_database(db, path)

        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "14 series in 2 segment(s)" in out
        assert "grid (rows x cols)" in out
        # one row per segment, offsets 0 and 12 (trailing WAL and
        # maintenance status lines excluded)
        body = out[out.index("grid (rows x cols)"):].splitlines()[1:]
        rows = [
            line.split() for line in body
            if line.strip()
            and not line.startswith(("WAL", "QUARANTINED", "maintenance"))
        ]
        assert [r[1] for r in rows] == ["0", "12"]
        assert [r[2] for r in rows] == ["12", "2"]
        assert "WAL: none" in out
        assert "maintenance: 2 live segment(s)" in out

    def test_inspect_missing_file(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope.npz")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_inspect_mmap(self, tmp_path, capsys):
        from repro import STS3Database
        from repro.core import save_database

        rng = np.random.default_rng(5)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(12)],
            sigma=2, epsilon=0.5, normalize=False,
        )
        path = tmp_path / "db.sts3"
        save_database(db, path)
        assert main(["inspect", str(path), "--mmap"]) == 0
        out = capsys.readouterr().out
        assert "12 series in 1 segment(s)" in out


class TestBench:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.levers == "parallel,mmap,cache,combined"
        assert args.repeats == 3

    def test_bench_runs_and_prints_table(self, capsys):
        assert main(["bench", "--levers", "cache", "--series", "150",
                     "--queries", "4", "--length", "24", "--repeats", "1",
                     "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "lever" in out
        assert "speedup" in out
        assert "cache" in out
        assert "True" in out  # identical_neighbor_lists column

    def test_bench_json_output(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        assert main(["bench", "--levers", "cache", "--series", "150",
                     "--queries", "4", "--length", "24", "--repeats", "1",
                     "--k", "2", "--json", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert {record["phase"] for record in report} == {"cache"}
        assert all(record["identical_neighbor_lists"] for record in report)

    def test_bench_rejects_unknown_lever(self, capsys):
        assert main(["bench", "--levers", "warp"]) == 2
        assert "unknown lever" in capsys.readouterr().err


class TestServe:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.file is None
        assert args.port == 21335
        assert args.http_port == 21336
        assert args.coalesce_ms == 2.0
        assert args.max_pending == 256
        assert args.rate is None
        assert args.max_workers is None
        assert args.cache_bytes == 0

    def test_serve_accepts_every_knob(self):
        args = build_parser().parse_args([
            "serve", "data.sts3", "--host", "0.0.0.0", "--port", "0",
            "--http-port", "-1", "--coalesce-ms", "5", "--max-coalesce",
            "16", "--max-pending", "8", "--rate", "100", "--burst", "10",
            "--max-workers", "2", "--cache-bytes", "1048576",
        ])
        assert args.file == "data.sts3"
        assert args.http_port == -1
        assert args.rate == 100.0
        assert args.max_workers == 2

    def test_serve_build_db_synthetic(self):
        from repro.cli import _serve_build_db

        args = build_parser().parse_args([
            "serve", "--series", "40", "--length", "32",
        ])
        db, source = _serve_build_db(args)
        assert len(db) == 40
        assert "synthetic" in source

    def test_serve_build_db_ucr(self, ucr_file):
        from repro.cli import _serve_build_db

        args = build_parser().parse_args(["serve", str(ucr_file)])
        db, source = _serve_build_db(args)
        assert len(db) == 12
        assert "UCR" in source

    def test_serve_build_db_archive(self, tmp_path):
        from repro.cli import _serve_build_db
        from repro.core import STS3Database, save_database

        rng = np.random.default_rng(3)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(10)], sigma=2, epsilon=0.5
        )
        path = tmp_path / "db.sts3"
        save_database(db, path)
        args = build_parser().parse_args([
            "serve", str(path), "--cache-bytes", "65536",
        ])
        loaded, source = _serve_build_db(args)
        assert len(loaded) == 10
        assert "archive" in source
        assert loaded.result_cache is not None

    def test_serve_missing_file_errors(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "absent")]) == 2
        assert "cannot serve" in capsys.readouterr().err
