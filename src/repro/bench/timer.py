"""Wall-clock timing helpers for the experiment harness."""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Timer", "time_callable"]


class Timer:
    """Context manager recording elapsed wall-clock seconds.

    ::

        with Timer() as t:
            run_queries()
        print(t.seconds)
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start

    @property
    def millis(self) -> float:
        """Elapsed time in milliseconds (the paper reports ms)."""
        return self.seconds * 1000.0


def time_callable(fn: Callable[[], object], repeat: int = 1) -> float:
    """Best-of-``repeat`` wall-clock seconds for calling ``fn``.

    Best-of (rather than mean) suppresses scheduler noise, the usual
    convention for micro-benchmarks.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
