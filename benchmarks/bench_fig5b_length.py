"""Figure 5(b): runtime of the three accelerated STS3s vs series length.

Paper Section 7.4.2: the approximate STS3 is near-insensitive to
length; the pruning-based runtime grows roughly linearly (suited to
short series); the index-based algorithm fares better on longer series.
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload

LENGTHS = [100, 200, 400, 800]
METHODS = ["index", "pruning", "approximate"]


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(20_000, minimum=150)
    n_queries = scaled(500, minimum=5)
    rows = []
    dbs = {}
    times: dict[str, list[float]] = {m: [] for m in METHODS}
    for length in LENGTHS:
        workload = ecg_workload(n_series, n_queries, length=length, seed=2)
        db = STS3Database(workload.database, sigma=3, epsilon=0.58, normalize=False)
        db.indexed_searcher()
        db.pruning_searcher()
        db.approximate_searcher()
        row: list[object] = [length]
        for method in METHODS:
            with Timer() as t:
                for q in workload.queries:
                    db.query(q, k=1, method=method)
            row.append(t.millis)
            times[method].append(t.seconds)
        rows.append(row)
        dbs[length] = (db, workload)
    report(
        "fig5b_length",
        render_table(
            ["length", "index ms", "pruning ms", "approximate ms"],
            rows,
            title=f"Figure 5(b): runtime vs series length (#series={n_series})",
        ),
    )
    # Shape: the approximate variant handles long series far better
    # than the pruning-based one (paper: pruning suits short series).
    # Endpoint growth ratios are noisy, so compare total work across
    # the length sweep instead.
    assert sum(times["approximate"]) < sum(times["pruning"])
    assert times["approximate"][-1] < times["pruning"][-1]
    return dbs


@pytest.mark.parametrize("length", [LENGTHS[0], LENGTHS[-1]])
@pytest.mark.parametrize("method", METHODS)
def test_bench_per_query(benchmark, experiment, method, length):
    db, workload = experiment[length]
    query = workload.queries[0]
    benchmark(lambda: db.query(query, k=1, method=method))
