"""Tests for query results and search statistics."""

import pytest

from repro.core.result import Neighbor, QueryResult, SearchStats


class TestNeighbor:
    def test_ordering_by_similarity(self):
        low = Neighbor(similarity=0.2, index=0)
        high = Neighbor(similarity=0.9, index=1)
        assert high > low

    def test_frozen(self):
        n = Neighbor(similarity=0.5, index=3)
        with pytest.raises(AttributeError):
            n.similarity = 0.9


class TestSearchStats:
    def test_pruning_rate(self):
        stats = SearchStats(candidates=100, pruned=25)
        assert stats.pruning_rate == 0.25

    def test_pruning_rate_empty(self):
        assert SearchStats().pruning_rate == 0.0

    def test_compression_rate(self):
        stats = SearchStats(candidates=200, final_candidates=10)
        assert stats.compression_rate == 0.05

    def test_compression_rate_empty(self):
        assert SearchStats().compression_rate == 0.0


class TestQueryResult:
    def _result(self):
        return QueryResult(
            neighbors=[
                Neighbor(similarity=0.9, index=4),
                Neighbor(similarity=0.7, index=1),
            ]
        )

    def test_best(self):
        assert self._result().best.index == 4

    def test_indices_and_similarities(self):
        result = self._result()
        assert result.indices() == [4, 1]
        assert result.similarities() == [0.9, 0.7]

    def test_default_stats(self):
        assert self._result().stats.candidates == 0
