"""Tests for the STS3Database facade, out-points, and buffered updates."""

import numpy as np
import pytest

from repro import STS3Database
from repro.core.database import UpdateBuffer
from repro.core.grid import Bound
from repro.exceptions import EmptyDatabaseError, ParameterError


def _make_db(n=40, length=64, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    series = [rng.normal(size=length) for _ in range(n)]
    defaults = dict(sigma=2, epsilon=0.4)
    defaults.update(kwargs)
    return STS3Database(series, **defaults), series, rng


class TestConstruction:
    def test_empty_raises(self):
        with pytest.raises(EmptyDatabaseError):
            STS3Database([], sigma=1, epsilon=1)

    def test_normalizes_by_default(self):
        db, _, _ = _make_db()
        for s in db.series:
            assert abs(s.mean()) < 1e-9

    def test_no_normalize(self):
        rng = np.random.default_rng(0)
        raw = [rng.normal(5, 2, size=32) for _ in range(5)]
        db = STS3Database(raw, sigma=2, epsilon=0.4, normalize=False)
        assert abs(db.series[0].mean() - 5) < 2

    def test_len_includes_buffer(self):
        db, _, rng = _make_db(n=10, buffer_capacity=5, value_padding=0.0)
        assert len(db) == 10


class TestQueryMethods:
    def test_all_methods_accept_query(self):
        db, series, rng = _make_db()
        query = series[4] + rng.normal(0, 0.05, size=64)
        for method in ("naive", "index", "pruning", "approximate", "auto"):
            result = db.query(query, k=3, method=method)
            assert len(result.neighbors) == 3

    def test_exact_methods_agree(self):
        db, series, rng = _make_db(n=60)
        query = rng.normal(size=64)
        results = {
            m: db.query(query, k=5, method=m) for m in ("naive", "index", "pruning")
        }
        baseline = results["naive"]
        for m, result in results.items():
            assert result.indices() == baseline.indices(), m
            assert np.allclose(result.similarities(), baseline.similarities()), m

    def test_unknown_method_raises(self):
        db, _, rng = _make_db(n=5)
        with pytest.raises(ParameterError):
            db.query(rng.normal(size=64), method="magic")

    def test_auto_dispatch_short_series(self):
        db, _, _ = _make_db(n=10, length=64)
        assert db._auto_method() == "pruning"

    def test_auto_dispatch_medium_series(self):
        db, _, _ = _make_db(n=10, length=500)
        assert db._auto_method() == "index"

    def test_auto_dispatch_long_series(self):
        db, _, _ = _make_db(n=6, length=1200)
        assert db._auto_method() == "approximate"

    def test_query_with_out_of_bound_values(self):
        """A query spike outside the database value range must not crash
        and must not match database cells."""
        db, series, rng = _make_db(value_padding=0.0, normalize=False)
        query = series[0].copy()
        query[10] = 50.0  # far outside any z-normalized bound
        result = db.query(query, k=1, method="naive")
        assert 0 <= result.best.index < len(db.series)

    def test_self_query_returns_self(self):
        db, series, _ = _make_db()
        result = db.query(series[7], k=1, method="index")
        assert result.best.index == 7
        assert result.best.similarity == 1.0

    def test_k_capped_at_database_size(self):
        db, _, rng = _make_db(n=5)
        result = db.query(rng.normal(size=64), k=100, method="naive")
        assert len(result.neighbors) == 5


class TestSearcherCaching:
    def test_pruning_cached_per_scale(self):
        db, _, _ = _make_db()
        a = db.pruning_searcher(4)
        b = db.pruning_searcher(4)
        c = db.pruning_searcher(5)
        assert a is b
        assert a is not c

    def test_insert_invalidates_caches(self):
        db, series, rng = _make_db()
        first = db.indexed_searcher()
        db.insert(rng.normal(size=64) * 0.5)  # in-bound after normalize
        second = db.indexed_searcher()
        assert first is not second


class TestInsert:
    def test_in_bound_insert_is_queryable(self):
        db, series, rng = _make_db(value_padding=1.0)
        new = 0.9 * rng.normal(size=64)  # fresh series, in bound after normalize
        before = len(db.series)
        db.insert(new)
        assert len(db.series) == before + 1
        result = db.query(new, k=1, method="naive")
        assert result.best.index == before
        assert result.best.similarity == 1.0

    def test_out_of_bound_insert_goes_to_buffer(self):
        db, _, _ = _make_db(normalize=False, buffer_capacity=10)
        spike = np.zeros(64)
        spike[3] = 100.0
        db.insert(spike)
        assert len(db.buffer) == 1
        assert db.rebuild_count == 0

    def test_buffered_series_found_by_query(self):
        db, _, _ = _make_db(normalize=False, buffer_capacity=10)
        spike = np.zeros(64)
        spike[3] = 100.0
        db.insert(spike)
        result = db.query(spike, k=1, method="naive")
        assert result.best.index == len(db.series)  # provisional index
        assert result.best.similarity == 1.0

    def test_buffer_overflow_triggers_rebuild(self):
        db, _, _ = _make_db(normalize=False, buffer_capacity=2)
        for i in range(2):
            spike = np.zeros(64)
            spike[i] = 100.0 + i
            db.insert(spike)
        assert db.rebuild_count == 1
        assert len(db.buffer) == 0
        assert len(db.series) == 42

    def test_indices_stable_across_flush(self):
        db, _, _ = _make_db(normalize=False, buffer_capacity=3)
        spike = np.zeros(64)
        spike[5] = 77.0
        db.insert(spike)
        provisional = db.query(spike, k=1, method="naive").best.index
        db.flush()
        flushed = db.query(spike, k=1, method="naive").best.index
        assert provisional == flushed
        assert db.query(spike, k=1).best.similarity == 1.0

    def test_flush_noop_when_empty(self):
        db, _, _ = _make_db()
        db.flush()
        assert db.rebuild_count == 0


class TestUpdateBuffer:
    def test_bound_grows(self):
        base = Bound(0.0, 9.0, (-1.0,), (1.0,))
        buf = UpdateBuffer(4, base, col_width=2, row_heights=(0.5,))
        tall = np.zeros(10)
        tall[0] = 5.0
        buf.add(tall)
        assert buf.bound.x_max[0] >= 5.0
        assert len(buf) == 1

    def test_recomputes_sets_on_growth(self):
        base = Bound(0.0, 9.0, (-1.0,), (1.0,))
        buf = UpdateBuffer(4, base, col_width=2, row_heights=(0.5,))
        buf.add(np.linspace(-1, 1, 10))
        first_set = buf.sets[0].copy()
        tall = np.zeros(10)
        tall[0] = 9.0
        buf.add(tall)
        # bound grew, first series re-gridded
        assert len(buf.sets) == 2
        assert not np.array_equal(buf.sets[0], first_set) or buf.grid.n_rows != (5,)

    def test_capacity_validation(self):
        with pytest.raises(ParameterError):
            UpdateBuffer(0, Bound(0, 1, (0.0,), (1.0,)), 1, (1.0,))

    def test_drain_empties(self):
        base = Bound(0.0, 9.0, (-1.0,), (1.0,))
        buf = UpdateBuffer(4, base, col_width=2, row_heights=(0.5,))
        buf.add(np.zeros(10))
        out = buf.drain()
        assert len(out) == 1
        assert len(buf) == 0
