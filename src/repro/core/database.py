"""User-facing STS3 database (the paper's system glued together).

:class:`STS3Database` owns the bound, the grid, the set representations
of all series, and lazily-built accelerated searchers.  It implements:

- k-NN queries with any STS3 variant (``method=`` "naive", "index",
  "pruning", "approximate", or "auto" per Section 4's suitability
  guidance);
- out-of-bound query points via Algorithm 6 (Section 5.3.1);
- inserts with the lazy buffered-update strategy of Section 5.3.2:
  in-bound series join the database directly; out-of-bound series
  ("out-TSs") go to a buffer whose own bound may grow, and a full
  rebuild with an expanded bound happens only when the buffer fills.
  Queries consult the main database first and then refresh the answer
  from the buffer, exactly as the paper describes.
"""

from __future__ import annotations

import logging

import numpy as np

from ..data.normalize import z_normalize
from ..exceptions import EmptyDatabaseError, ParameterError
from ..obs import get_registry, span
from ..types import as_series
from .approximate import ApproximateSearcher
from .batch import BatchQueryEngine, QueryWorkspace
from .grid import Bound, Grid
from .heap import KnnHeap
from .indexed import IndexedSearcher
from .jaccard import jaccard
from .naive import NaiveSearcher
from .pruning import PruningSearcher
from .result import QueryResult, SearchStats
from .setrep import transform, transform_query

__all__ = ["STS3Database", "UpdateBuffer"]

logger = logging.getLogger(__name__)

_METHODS = ("naive", "index", "pruning", "approximate", "auto")

#: fork-inherited state for parallel batches; see query_batch.  The
#: worker function must live at module level (Pool pickles it by name),
#: and the database itself travels to the children via fork's
#: copy-on-write memory rather than pickling.
_FORK_STATE: dict = {}


def _batch_worker(indices: list[int]) -> list["QueryResult"]:
    db = _FORK_STATE["db"]
    queries = _FORK_STATE["queries"]
    params = _FORK_STATE["params"]
    return db._batch_chunk([queries[i] for i in indices], **params)


class UpdateBuffer:
    """Holding area for out-of-bound inserted series (Section 5.3.2).

    The buffer keeps its own bound, which grows to cover each added
    series and is always at least the database bound; set
    representations of buffered series are recomputed whenever the
    bound grows (the buffer is small, so this is cheap).
    """

    def __init__(self, capacity: int, db_bound: Bound, col_width: float, row_heights: tuple[float, ...]):
        if capacity < 1:
            raise ParameterError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.col_width = col_width
        self.row_heights = row_heights
        self.bound = db_bound
        self.grid = Grid(db_bound, col_width, row_heights)
        self.series: list[np.ndarray] = []
        self.sets: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self.series)

    @property
    def full(self) -> bool:
        return len(self.series) >= self.capacity

    def add(self, series: np.ndarray) -> None:
        """Add an out-TS, growing the buffer bound if needed."""
        own = Bound.of_series(series)
        if not self.bound.covers(own):
            self.bound = Bound(
                min(self.bound.t_min, own.t_min),
                max(self.bound.t_max, own.t_max),
                tuple(min(a, b) for a, b in zip(self.bound.x_min, own.x_min)),
                tuple(max(a, b) for a, b in zip(self.bound.x_max, own.x_max)),
            )
            self.grid = Grid(self.bound, self.col_width, self.row_heights)
            self.sets = [transform(s, self.grid) for s in self.series]
        self.series.append(series)
        self.sets.append(transform(series, self.grid))

    def drain(self) -> list[np.ndarray]:
        """Remove and return all buffered series."""
        out = self.series
        self.series = []
        self.sets = []
        return out


class STS3Database:
    """Set-based time-series similarity search database.

    Parameters follow DESIGN.md §2: ``sigma`` is the time-axis cell
    width in samples, ``epsilon`` the value-axis cell height.  For
    multi-dimensional series ``epsilon`` may be a sequence with one
    height per value axis (Section 5.1's per-axis ``α_x, α_y``
    variant).  With ``normalize=True`` (default) every series —
    database, inserts, and queries — is z-normalized on the way in,
    matching the paper's standing assumption.
    """

    def __init__(
        self,
        series: list[np.ndarray],
        sigma: float,
        epsilon: float | tuple[float, ...],
        normalize: bool = True,
        value_padding: float = 0.0,
        buffer_capacity: int = 32,
        default_scale: int = 6,
        default_max_scale: int = 4,
    ):
        if not series:
            raise EmptyDatabaseError("cannot build a database from no series")
        self.normalize = normalize
        self.sigma = float(sigma)
        self.epsilon = (
            tuple(float(e) for e in epsilon)
            if isinstance(epsilon, (tuple, list))
            else float(epsilon)
        )
        self.value_padding = float(value_padding)
        self.default_scale = int(default_scale)
        self.default_max_scale = int(default_max_scale)
        self.series = [self._prepare(s) for s in series]
        self._rebuild_grid()
        self.buffer = UpdateBuffer(
            buffer_capacity, self.grid.bound, self.grid.col_width, self.grid.row_heights
        )
        #: number of full rebuilds triggered by buffer overflows
        #: (observable cost for the Appendix A propositions).
        self.rebuild_count = 0

    # -- construction helpers -------------------------------------------

    def _prepare(self, series: np.ndarray) -> np.ndarray:
        # as_series validates shape and rejects NaN/inf at the boundary,
        # where the error message can still name the offending input.
        arr = as_series(series)
        return z_normalize(arr) if self.normalize else arr

    def _rebuild_grid(self, extra: list[np.ndarray] | None = None) -> None:
        """(Re)compute bound, grid, and every set representation."""
        if extra:
            self.series.extend(extra)
        bound = Bound.of_database(self.series, value_padding=self.value_padding)
        if isinstance(self.epsilon, tuple):
            self.grid = Grid.from_axis_cell_sizes(bound, self.sigma, self.epsilon)
        else:
            self.grid = Grid.from_cell_sizes(bound, self.sigma, self.epsilon)
        self.sets = [transform(s, self.grid) for s in self.series]
        self._invalidate()
        logger.debug(
            "rebuilt grid: %d series, %d columns x %s rows (%d cells)",
            len(self.series),
            self.grid.n_columns,
            self.grid.n_rows,
            self.grid.n_cells,
        )

    def _invalidate(self) -> None:
        self._naive: NaiveSearcher | None = None
        self._indexed: IndexedSearcher | None = None
        self._pruning: dict[int, PruningSearcher] = {}
        self._approximate: dict[int, ApproximateSearcher] = {}
        self._calibrated_method: str | None = None
        # The batch engine wraps the indexed searcher, so it dies with
        # it; its workspace (plain buffers) survives rebuilds.
        self._batch_engine: BatchQueryEngine | None = None
        if not hasattr(self, "_workspace"):
            self._workspace = QueryWorkspace()

    def __len__(self) -> int:
        return len(self.series) + len(self.buffer)

    # -- searcher access -------------------------------------------------

    def naive_searcher(self) -> NaiveSearcher:
        if self._naive is None:
            self._naive = NaiveSearcher(self.sets)
        return self._naive

    def indexed_searcher(self) -> IndexedSearcher:
        if self._indexed is None:
            self._indexed = IndexedSearcher(self.sets)
        return self._indexed

    def pruning_searcher(self, scale: int | None = None) -> PruningSearcher:
        scale = self.default_scale if scale is None else int(scale)
        if scale not in self._pruning:
            self._pruning[scale] = PruningSearcher(self.sets, self.grid, scale)
        return self._pruning[scale]

    def batch_engine(self) -> BatchQueryEngine:
        """The vectorized batch kernel over the inverted index."""
        if self._batch_engine is None:
            self._batch_engine = BatchQueryEngine(
                self.indexed_searcher(), workspace=self._workspace
            )
        return self._batch_engine

    def approximate_searcher(self, max_scale: int | None = None) -> ApproximateSearcher:
        max_scale = self.default_max_scale if max_scale is None else int(max_scale)
        if max_scale not in self._approximate:
            self._approximate[max_scale] = ApproximateSearcher(
                self.series, self.sets, self.grid.bound, max_scale
            )
        return self._approximate[max_scale]

    def _auto_method(self) -> str:
        """Pick the variant for ``method="auto"`` queries.

        After :meth:`calibrate` has run, the measured fastest *exact*
        variant wins.  Otherwise Section 4's suitability guidance is
        applied as a rule of thumb: "the index-based algorithm is
        suitable for long time series, the pruning-based algorithm for
        short time series and the approximate algorithm for very long
        time series."
        """
        if self._calibrated_method is not None:
            return self._calibrated_method
        median_len = int(np.median([len(s) for s in self.series]))
        if median_len < 200:
            return "pruning"
        if median_len < 1000:
            return "index"
        return "approximate"

    def calibrate(self, sample_queries: list[np.ndarray], k: int = 1) -> dict[str, float]:
        """Measure the exact variants on sample queries; fix ``auto``.

        Runs the naive, index, and pruning searchers over the sample
        and pins ``method="auto"`` to the measured fastest (the
        approximate variant is excluded — auto-dispatch must never
        silently trade exactness).  Returns the per-variant seconds for
        inspection; call again with new samples to re-calibrate.
        """
        import time

        if not sample_queries:
            raise ParameterError("calibration needs at least one sample query")
        timings: dict[str, float] = {}
        for method in ("naive", "index", "pruning"):
            start = time.perf_counter()
            for query in sample_queries:
                self.query(query, k=k, method=method)
            timings[method] = time.perf_counter() - start
        self._calibrated_method = min(timings, key=timings.get)
        return timings

    # -- queries -----------------------------------------------------------

    def transform_query(self, series: np.ndarray) -> np.ndarray:
        """Set representation of a (possibly out-of-bound) query."""
        return transform_query(self._prepare(series), self.grid)

    def query(
        self,
        series: np.ndarray,
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
    ) -> QueryResult:
        """k-NN query under the Jaccard similarity of set representations.

        Returns neighbours ordered best-first; ``Neighbor.index``
        refers to :attr:`series` positions, with buffered series
        indexed after the main database (their positions are stable
        across the eventual flush).
        """
        if method not in _METHODS:
            raise ParameterError(f"unknown method {method!r}; one of {_METHODS}")
        if method == "auto":
            method = self._auto_method()
        with span("query", method=method, k=k):
            with span("transform"):
                prepared = self._prepare(series)
                query_set = transform_query(prepared, self.grid)

            if method == "naive":
                result = self.naive_searcher().query(query_set, k=k)
            elif method == "index":
                result = self.indexed_searcher().query(query_set, k=k)
            elif method == "pruning":
                result = self.pruning_searcher(scale).query(query_set, k=k)
            else:
                result = self.approximate_searcher(max_scale).query(
                    prepared, query_set, k=k
                )

            if len(self.buffer):
                result = self._merge_buffer(prepared, result, k)
        get_registry().counter(
            "sts3_queries_total", "k-NN queries answered, by search variant"
        ).inc(method=method)
        return result

    def query_batch(
        self,
        queries: list[np.ndarray],
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        workers: int | None = None,
    ) -> list[QueryResult]:
        """Answer many queries, optionally across worker processes.

        The paper's conclusion names "adopting a parallelized
        mechanism" as future work.  Two mechanisms compose here:

        - With ``method="index"`` the whole batch (or each worker's
          share of it) is answered by the vectorized
          :class:`~repro.core.batch.BatchQueryEngine` — one CSR pass
          over the inverted index instead of a Python-level loop —
          which returns results identical to per-query :meth:`query`
          calls.  Other methods fall back to the scalar loop.
        - Queries are embarrassingly parallel, but CPython threads do
          not help here (the hot loops hold the GIL), so parallel
          batches fork worker processes that inherit the built
          searchers copy-on-write.  Each worker takes a *strided* slice
          of the queries (``queries[i::workers]``) rather than a
          contiguous block: query costs are heterogeneous (they scale
          with postings touched), and striding deals similar mixes of
          cheap and expensive queries to every worker, which balances
          load where contiguous blocks would let one worker straggle.

        On platforms without ``fork`` the batch silently runs
        sequentially.  ``workers=None`` or 1 runs sequentially.
        """
        if method not in _METHODS:
            raise ParameterError(f"unknown method {method!r}; one of {_METHODS}")
        if method == "auto":
            method = self._auto_method()
        get_registry().counter(
            "sts3_batch_queries_total", "queries answered through query_batch"
        ).inc(len(queries), method=method)
        with span("query_batch", method=method, queries=len(queries)):
            return self._query_batch(
                queries, k=k, method=method, scale=scale,
                max_scale=max_scale, workers=workers,
            )

    def _query_batch(
        self,
        queries: list[np.ndarray],
        k: int,
        method: str,
        scale: int | None,
        max_scale: int | None,
        workers: int | None,
    ) -> list[QueryResult]:
        # Build the needed searcher before fanning out, so workers
        # inherit ready structures instead of each rebuilding them.
        # (A no-op span when the searcher is already cached.)
        with span("build_index", method=method):
            if method == "index":
                self.indexed_searcher()
            elif method == "pruning":
                self.pruning_searcher(scale)
            elif method == "approximate":
                self.approximate_searcher(max_scale)

        if not workers or workers <= 1 or len(queries) < 2:
            return self._batch_chunk(
                list(queries), k=k, method=method, scale=scale, max_scale=max_scale
            )
        import multiprocessing as mp

        try:
            context = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            return self._batch_chunk(
                list(queries), k=k, method=method, scale=scale, max_scale=max_scale
            )
        workers = min(workers, len(queries))
        chunks = [list(range(i, len(queries), workers)) for i in range(workers)]
        _FORK_STATE["db"] = self
        _FORK_STATE["queries"] = list(queries)
        _FORK_STATE["params"] = dict(
            k=k, method=method, scale=scale, max_scale=max_scale
        )
        # Forked workers inherit the active tracer copy-on-write: spans
        # they record die with the worker process, while the parent's
        # open query_batch span closes normally (docs/observability.md).
        try:
            with context.Pool(processes=workers) as pool:
                chunk_results = pool.map(_batch_worker, chunks)
        finally:
            _FORK_STATE.clear()
        # Re-interleave: chunk i holds queries i, i+workers, i+2w, ...
        out: list[QueryResult] = [None] * len(queries)  # type: ignore[list-item]
        for i, results in enumerate(chunk_results):
            out[i::workers] = results
        return out

    def _batch_chunk(
        self,
        queries: list[np.ndarray],
        k: int = 1,
        method: str = "index",
        scale: int | None = None,
        max_scale: int | None = None,
    ) -> list[QueryResult]:
        """Answer a chunk of queries in-process (``method`` resolved).

        The ``method="index"`` path runs the vectorized batch kernel;
        every other method loops the scalar :meth:`query`.  Buffered
        series are merged per query either way, so results always match
        scalar calls exactly.
        """
        if method != "index":
            return [
                self.query(q, k=k, method=method, scale=scale, max_scale=max_scale)
                for q in queries
            ]
        with span("transform", queries=len(queries)):
            prepared = [self._prepare(q) for q in queries]
            query_sets = [transform_query(p, self.grid) for p in prepared]
        results = self.batch_engine().query_batch(query_sets, k=k)
        if len(self.buffer):
            results = [
                self._merge_buffer(p, r, k) for p, r in zip(prepared, results)
            ]
        return results

    def _merge_buffer(
        self, prepared: np.ndarray, result: QueryResult, k: int
    ) -> QueryResult:
        """Refresh the k-NN answer from the update buffer (Section 5.3.2).

        The query is re-transformed under the buffer's bound and
        compared with every buffered series; buffered series adopt
        indices following the main database.
        """
        with span("merge", buffered=len(self.buffer)):
            k = min(k, len(self.series) + len(self.buffer))
            heap = KnnHeap(k)
            for neighbor in result.neighbors:
                heap.consider(neighbor.similarity, neighbor.index)
            buffer_query = transform_query(prepared, self.buffer.grid)
            base = len(self.series)
            for offset, cell_set in enumerate(self.buffer.sets):
                heap.consider(jaccard(cell_set, buffer_query), base + offset)
            stats = SearchStats(
                candidates=result.stats.candidates + len(self.buffer),
                exact_computations=result.stats.exact_computations + len(self.buffer),
                pruned=result.stats.pruned,
                filter_rounds=result.stats.filter_rounds,
                final_candidates=len(heap),
            )
        get_registry().counter(
            "sts3_buffer_merges_total", "query answers refreshed from the update buffer"
        ).inc()
        return QueryResult(neighbors=heap.neighbors(), stats=stats)

    # -- updates -----------------------------------------------------------

    def insert(self, series: np.ndarray) -> None:
        """Add a series; out-of-bound series go through the lazy buffer.

        An in-bound series is appended directly (accelerated searchers
        are invalidated and rebuilt lazily).  An out-TS lands in the
        buffer; when the buffer fills, the whole database is rebuilt
        with a bound covering everything (the "refresh" of Section
        5.3.2), which is the expensive O(M·n·log n) step that
        Proposition 1 amortizes.
        """
        prepared = self._prepare(series)
        if self.grid.bound.covers(Bound.of_series(prepared)):
            self.series.append(prepared)
            self.sets.append(transform(prepared, self.grid))
            self._invalidate()
            get_registry().counter(
                "sts3_inserts_total", "series inserted, by destination"
            ).inc(path="direct")
            return
        self.buffer.add(prepared)
        get_registry().counter(
            "sts3_inserts_total", "series inserted, by destination"
        ).inc(path="buffered")
        logger.debug(
            "out-of-bound insert buffered (%d/%d)",
            len(self.buffer),
            self.buffer.capacity,
        )
        if self.buffer.full:
            self.flush()

    def verify_integrity(self) -> list[str]:
        """Self-check the database's internal consistency.

        Returns a list of human-readable problem descriptions (empty
        when everything is consistent).  Checks: series/set parallel
        lists, every set matches a fresh transform under the current
        grid, the bound covers every stored series, buffer bound covers
        the database bound, and cached searchers reference the live set
        list.  Intended for test harnesses and post-crash diagnostics;
        cost is one full re-transform, so don't call it per query.
        """
        problems: list[str] = []
        if len(self.series) != len(self.sets):
            problems.append(
                f"{len(self.series)} series but {len(self.sets)} set reps"
            )
        for i, (series, cell_set) in enumerate(zip(self.series, self.sets)):
            if not self.grid.bound.covers(Bound.of_series(series)):
                problems.append(f"series {i} escapes the database bound")
            fresh = transform(series, self.grid)
            if not np.array_equal(fresh, cell_set):
                problems.append(f"series {i} has a stale set representation")
        if not self.buffer.bound.covers(self.grid.bound):
            problems.append("buffer bound does not cover the database bound")
        if len(self.buffer.series) != len(self.buffer.sets):
            problems.append("buffer series/sets lists are out of sync")
        if self._naive is not None and self._naive.sets is not self.sets:
            problems.append("cached naive searcher references stale sets")
        if self._indexed is not None and self._indexed.sets is not self.sets:
            problems.append("cached index searcher references stale sets")
        for scale, searcher in self._pruning.items():
            if searcher.sets is not self.sets:
                problems.append(f"cached pruning searcher (scale={scale}) is stale")
        return problems

    def flush(self) -> None:
        """Force the buffered series into the database (full rebuild)."""
        if not len(self.buffer):
            return
        extra = self.buffer.drain()
        logger.info(
            "flushing %d buffered series; rebuilding %d set representations",
            len(extra),
            len(self.series) + len(extra),
        )
        with span("flush", flushed=len(extra)):
            self._rebuild_grid(extra=extra)
            self.buffer = UpdateBuffer(
                self.buffer.capacity,
                self.grid.bound,
                self.grid.col_width,
                self.grid.row_heights,
            )
        self.rebuild_count += 1
        get_registry().counter(
            "sts3_rebuilds_total", "full rebuilds triggered by buffer flushes"
        ).inc()
