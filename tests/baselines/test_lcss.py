"""Tests for LCSS and the FTSE-style accelerated evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.ftse import (
    ftse_lcss_distance,
    ftse_lcss_length,
    ftse_lcss_similarity,
    match_lists,
)
from repro.baselines.lcss import lcss_distance, lcss_length, lcss_similarity
from repro.exceptions import ParameterError

series = arrays(
    np.float64,
    st.integers(min_value=0, max_value=32),
    elements=st.floats(min_value=-4, max_value=4, allow_nan=False),
)
eps = st.floats(min_value=0.0, max_value=2.0)
delta = st.one_of(st.none(), st.integers(min_value=0, max_value=10))


def _reference_lcss(a, b, epsilon, delta=None):
    """Textbook O(n·m) conditional DP — the ground truth."""
    n, m = len(a), len(b)
    dp = np.zeros((n + 1, m + 1), dtype=int)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            match = abs(a[i - 1] - b[j - 1]) <= epsilon and (
                delta is None or abs(i - j) <= delta
            )
            if match:
                dp[i, j] = dp[i - 1, j - 1] + 1
            else:
                dp[i, j] = max(dp[i - 1, j], dp[i, j - 1])
    return int(dp[n, m])


class TestLCSS:
    def test_identical_series(self):
        a = np.arange(10.0)
        assert lcss_length(a, a, epsilon=0.1) == 10
        assert lcss_similarity(a, a, 0.1) == 1.0
        assert lcss_distance(a, a, 0.1) == 0.0

    def test_disjoint_values(self):
        a = np.zeros(5)
        b = np.full(5, 100.0)
        assert lcss_length(a, b, epsilon=1.0) == 0
        assert lcss_distance(a, b, 1.0) == 1.0

    def test_empty_series(self):
        assert lcss_length(np.array([]), np.arange(3.0), 0.5) == 0
        assert lcss_similarity(np.array([]), np.arange(3.0), 0.5) == 0.0

    def test_band_restricts_matches(self):
        """With a tight band, a time-shifted copy matches poorly."""
        a = np.arange(20.0)
        b = a + 0.0
        b = np.roll(b, 8)
        wide = lcss_length(a, b, epsilon=0.1, delta=None)
        tight = lcss_length(a, b, epsilon=0.1, delta=2)
        assert tight <= wide

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            lcss_length(np.zeros(2), np.zeros(2), epsilon=-1)
        with pytest.raises(ParameterError):
            lcss_length(np.zeros(2), np.zeros(2), epsilon=1, delta=-1)

    @given(series, series, eps, delta)
    @settings(max_examples=40)
    def test_matches_reference(self, a, b, epsilon, d):
        assert lcss_length(a, b, epsilon, d) == _reference_lcss(a, b, epsilon, d)

    @given(series, series, eps, delta)
    @settings(max_examples=30)
    def test_symmetry(self, a, b, epsilon, d):
        assert lcss_length(a, b, epsilon, d) == lcss_length(b, a, epsilon, d)

    @given(series, series, eps)
    @settings(max_examples=30)
    def test_bounded_by_min_length(self, a, b, epsilon):
        assert lcss_length(a, b, epsilon) <= min(len(a), len(b))

    def test_multidim(self):
        a = np.column_stack([np.arange(5.0), np.arange(5.0)])
        assert lcss_length(a, a, epsilon=0.1) == 5


class TestMatchLists:
    def test_basic(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.05, 5.0, 1.02])
        lists = match_lists(a, b, epsilon=0.1)
        assert lists[0].tolist() == [0]
        assert lists[1].tolist() == [2]

    def test_band_applied(self):
        a = np.zeros(5)
        b = np.zeros(5)
        lists = match_lists(a, b, epsilon=0.1, delta=1)
        for i, js in enumerate(lists):
            assert all(abs(int(j) - i) <= 1 for j in js)

    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            match_lists(np.zeros((3, 2)), np.zeros(3), 0.5)

    def test_no_matches(self):
        lists = match_lists(np.zeros(3), np.full(3, 9.0), epsilon=0.5)
        assert all(len(js) == 0 for js in lists)


class TestFTSEAgreesWithDP:
    @given(series, series, eps, delta)
    @settings(max_examples=50)
    def test_exact_agreement(self, a, b, epsilon, d):
        """FTSE is an exact evaluation: equal to the full DP everywhere."""
        assert ftse_lcss_length(a, b, epsilon, d) == lcss_length(a, b, epsilon, d)

    def test_boundary_rounding_regression(self):
        """Hypothesis-found: a tiny positive origin floors the query
        value 0.0 into bucket −1 while 1.0−origin rounds up a bucket —
        a true ε-match two buckets from home, missed by a ±1 probe."""
        a = np.array([0.0, 0.0])
        b = np.array([7.13253951e-250, 1.0])
        assert ftse_lcss_length(a, b, 1.0) == lcss_length(a, b, 1.0)
        assert ftse_lcss_length(a, b, 1.0) == 2

    def test_distance_and_similarity_consistent(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=30), rng.normal(size=30)
        sim = ftse_lcss_similarity(a, b, 0.5, 3)
        assert ftse_lcss_distance(a, b, 0.5, 3) == pytest.approx(1.0 - sim)
        assert sim == pytest.approx(lcss_similarity(a, b, 0.5, 3))

    def test_empty(self):
        assert ftse_lcss_similarity(np.array([]), np.array([]), 0.5) == 0.0
