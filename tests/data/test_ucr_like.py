"""Tests for the UCR-archive synthetic stand-ins."""

import numpy as np
import pytest

from repro.data.normalize import is_z_normalized
from repro.data.ucr_like import (
    cbf,
    device_profiles,
    faces_family,
    gesture3d,
    noisy_templates,
    smooth_outlines,
    template_classes,
    two_close_classes,
)
from repro.exceptions import ParameterError


def _check_dataset(ds, n_classes, length):
    assert ds.n_classes == n_classes
    assert ds.length == length
    assert all(len(s) == length for s in ds.train.series)
    assert all(len(s) == length for s in ds.test.series)
    assert all(is_z_normalized(s, tolerance=1e-6) for s in ds.train.series)


class TestTemplateClasses:
    def test_basic_shape(self, rng):
        templates = [rng.normal(size=64) for _ in range(4)]
        ds = template_classes("t", templates, 5, 3, seed=1)
        _check_dataset(ds, 4, 64)
        assert len(ds.train) == 20
        assert len(ds.test) == 12

    def test_reproducible(self, rng):
        templates = [np.sin(np.linspace(0, 6, 50))]
        a = template_classes("t", templates, 3, 3, seed=9)
        b = template_classes("t", templates, 3, 3, seed=9)
        for s1, s2 in zip(a.train.series, b.train.series):
            assert np.array_equal(s1, s2)

    def test_rejects_empty_templates(self):
        with pytest.raises(ParameterError):
            template_classes("t", [], 1, 1)


class TestCBF:
    def test_three_classes(self):
        ds = cbf(n_train_per_class=5, n_test_per_class=5, seed=0)
        _check_dataset(ds, 3, 128)

    def test_classes_distinguishable_by_ed(self):
        """1-NN under plain ED should beat random guessing easily."""
        from repro.baselines import error_rate, measures

        ds = cbf(n_train_per_class=10, n_test_per_class=10, seed=1)
        err = error_rate(ds.train, ds.test, measures.ed())
        assert err < 0.5  # random guessing would be ~0.67


class TestDeviceProfiles:
    def test_shape(self):
        ds = device_profiles(
            n_classes=3, n_train_per_class=4, n_test_per_class=4, length=200, seed=0
        )
        _check_dataset(ds, 3, 200)

    def test_mostly_flat_before_normalization(self):
        """Device profiles are near-zero with a few bursts, so after
        z-normalization the median should sit below the mean region."""
        ds = device_profiles(
            n_classes=2, n_train_per_class=3, n_test_per_class=2, length=300, seed=2
        )
        series = ds.train.series[0]
        # most samples cluster tightly at the baseline value
        baseline = np.median(series)
        assert np.mean(np.abs(series - baseline) < 0.1) > 0.5

    def test_needs_two_classes(self):
        with pytest.raises(ParameterError):
            device_profiles(n_classes=1)


class TestSmoothOutlines:
    def test_shape(self):
        ds = smooth_outlines(
            n_classes=4, n_train_per_class=3, n_test_per_class=3, length=128, seed=0
        )
        _check_dataset(ds, 4, 128)


class TestNoisyTemplates:
    def test_noise_dominates(self):
        """The noisy family should be much harder for ED than shapes."""
        from repro.baselines import error_rate, measures

        easy = smooth_outlines(
            n_classes=4, n_train_per_class=6, n_test_per_class=6, length=128, seed=3
        )
        hard = noisy_templates(
            n_classes=4, n_train_per_class=6, n_test_per_class=6, length=128, seed=3
        )
        err_easy = error_rate(easy.train, easy.test, measures.ed())
        err_hard = error_rate(hard.train, hard.test, measures.ed())
        assert err_hard >= err_easy


class TestTwoCloseClasses:
    def test_two_classes(self):
        ds = two_close_classes(
            n_train_per_class=3, n_test_per_class=3, length=256, seed=0
        )
        _check_dataset(ds, 2, 256)

    def test_templates_nearly_identical(self):
        ds = two_close_classes(
            n_train_per_class=8, n_test_per_class=2, length=256, seed=1,
            noise_std=0.0, shift_std=0.0, warp_strength=0.0,
        )
        by_label = {}
        for series, label in ds.train:
            by_label.setdefault(label, series)
        a, b = by_label[0], by_label[1]
        # correlation between the two class prototypes is very high
        assert np.corrcoef(a, b)[0, 1] > 0.9


class TestGesture3D:
    def test_full_and_projections(self):
        full, projections = gesture3d(
            n_classes=3, n_train_per_class=3, n_test_per_class=3, length=100, seed=0
        )
        assert full.train.series[0].shape == (100, 3)
        assert set(projections) == {"Cricket_X", "Cricket_Y", "Cricket_Z"}
        for name, ds in projections.items():
            assert ds.train.series[0].shape == (100,)
            assert np.array_equal(ds.train.labels, full.train.labels)


class TestFacesFamily:
    def test_same_family_different_sizes(self):
        faces_ucr, face_all = faces_family(seed=0, length=64, n_classes=4)
        assert faces_ucr.length == face_all.length == 64
        assert faces_ucr.n_classes == face_all.n_classes == 4
        assert len(faces_ucr.train) != len(face_all.train)
