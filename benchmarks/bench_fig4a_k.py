"""Figure 4(a): STS3 runtime as k grows.

Paper Section 7.4: "The time increases approximately logarithmically
with k ... the cost of updating heap is only O(log k)."  The expected
shape: runtime grows very slowly (far sub-linearly) in k.
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, repro_scale, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload

K_VALUES = [1, 2, 5, 10, 20, 50]


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(20_000, minimum=300)
    n_queries = scaled(200, minimum=10)
    workload = ecg_workload(n_series, n_queries, length=500, seed=0)
    db = STS3Database(workload.database, sigma=3, epsilon=0.58, normalize=False)
    db.indexed_searcher()  # build offline

    rows = []
    times = {}
    for k in K_VALUES:
        with Timer() as t:
            for q in workload.queries:
                db.query(q, k=k, method="index")
        rows.append([k, t.millis])
        times[k] = t.seconds
    report(
        "fig4a_k",
        render_table(
            ["k", "runtime ms"],
            rows,
            title=(
                f"Figure 4(a): runtime vs k "
                f"(#series={n_series}, #query={n_queries}, len=500)"
            ),
        ),
    )
    # Shape check: going 1 -> 50 in k costs far less than 50x.
    assert times[50] < times[1] * 8
    return db, workload


@pytest.mark.parametrize("k", K_VALUES)
def test_bench_knn(benchmark, experiment, k):
    db, workload = experiment
    query = workload.queries[0]
    benchmark(lambda: db.query(query, k=k, method="index"))
