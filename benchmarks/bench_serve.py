"""Benchmark: served-query throughput, coalesced vs serial dispatch.

Stands up the real asyncio server (:class:`repro.serve.ServerThread`,
binary protocol over loopback TCP) and drives it with a fleet of
concurrent single-query clients — each a thread with its own blocking
:class:`~repro.serve.ServeClient`, the worst case for a naive server:
no client ever batches, so every bit of batching must come from the
server's request coalescing.

Two phases over identical workloads:

- **serial** — ``coalesce_window_ms=0``: every request dispatches on
  its own through the engine thread (per-request scalar execution),
- **coalesced** — a micro-batching window gathers concurrent requests
  into one vectorized ``query_batch`` tile per signature.

The speedup is the whole point of the serving-layer design: on a
single core it comes purely from batch-kernel amortization (shared
planning, one candidate matrix, one top-k pass), not parallelism.
Every served answer is verified bit-identical to a direct
``db.query`` call before any timing is trusted.

CI runs this as a smoke floor (see ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --clients 32 --min-coalesce-speedup 2.0

Results land in ``BENCH_serve.json`` plus one machine-tagged ``serve``
entry appended to ``BENCH_trajectory.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core import STS3Database
from repro.data import ecg_stream, make_workload
from repro.serve import ServeClient, ServerThread, ServiceConfig

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
DEFAULT_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

TRAJECTORY_SCHEMA = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=4000,
                        help="database size")
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--clients", type=int, default=32,
                        help="concurrent single-query client threads")
    parser.add_argument("--rounds", type=int, default=4,
                        help="queries each client sends, one at a time")
    parser.add_argument("--sigma", type=float, default=3)
    parser.add_argument("--epsilon", type=float, default=0.58)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per phase; best (min) kept")
    parser.add_argument("--coalesce-ms", type=float, default=10.0,
                        help="window of the coalesced phase")
    parser.add_argument("--method", default="index")
    parser.add_argument("--min-coalesce-speedup", type=float, default=None,
                        help="fail (exit 1) below this coalesced-vs-serial "
                             "throughput ratio")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON result path ('-' to skip writing)")
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
                        help="append-only run history path ('-' to skip)")
    return parser


def drive_clients(port: int, client_queries: list[list[np.ndarray]],
                  k: int, method: str) -> tuple[float, list[list]]:
    """All clients, all rounds; returns (wall seconds, per-client results).

    Each client thread opens its own connection, then sends its queries
    one at a time (a request/response loop — never a client-side
    batch).  A barrier lines the threads up so the wall clock covers
    query traffic only, not connection setup.
    """
    n_clients = len(client_queries)
    results: list[list] = [[] for _ in range(n_clients)]
    errors: list[Exception] = []
    barrier = threading.Barrier(n_clients + 1)

    def worker(idx: int, client: ServeClient) -> None:
        try:
            barrier.wait(timeout=60)
            for query in client_queries[idx]:
                results[idx].append(client.query(query, k=k, method=method))
        except Exception as exc:  # noqa: BLE001 — re-raised by the driver
            errors.append(exc)

    clients = [ServeClient("127.0.0.1", port) for _ in range(n_clients)]
    threads = [
        threading.Thread(target=worker, args=(i, c), daemon=True)
        for i, c in enumerate(clients)
    ]
    try:
        for thread in threads:
            thread.start()
        barrier.wait(timeout=60)
        start = time.perf_counter()
        for thread in threads:
            thread.join(timeout=300)
        elapsed = time.perf_counter() - start
    finally:
        for client in clients:
            client.close()
    if errors:
        raise errors[0]
    return elapsed, results


def run_phase(db: STS3Database, config: ServiceConfig,
              client_queries: list[list[np.ndarray]], k: int, method: str,
              repeats: int) -> tuple[float, list[list]]:
    """Best-of-``repeats`` wall time for one server configuration."""
    best = float("inf")
    kept: list[list] = []
    for _ in range(repeats):
        with ServerThread(db, config) as handle:
            elapsed, results = drive_clients(
                handle.port, client_queries, k, method
            )
        if elapsed < best:
            best, kept = elapsed, results
    return best, kept


def identical(served: list[list], direct: list[list]) -> bool:
    """Bit-identical neighbour lists, client by client, round by round."""
    for client_served, client_direct in zip(served, direct):
        for s, d in zip(client_served, client_direct):
            if len(s.neighbors) != len(d.neighbors):
                return False
            for a, b in zip(s.neighbors, d.neighbors):
                if a.index != b.index or a.similarity != b.similarity:
                    return False
    return True


def append_trajectory(record: dict, args, path: Path) -> None:
    """Append one ``serve`` entry to the run history (append-only)."""
    history = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history["runs"] = loaded["runs"]
        except (json.JSONDecodeError, OSError):
            print(f"warning: {path} unreadable, starting a fresh trajectory")
    history["runs"].append({
        "schema": TRAJECTORY_SCHEMA,
        "benchmark": "serve",
        "phase": "serve",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repro": __version__,
        },
        "workload": {
            "n_series": args.series,
            "n_clients": args.clients,
            "rounds": args.rounds,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
            "method": args.method,
        },
        "summary": {
            "coalesce_speedup": record["coalesce_speedup"],
            "serial_queries_per_second": record["serial_queries_per_second"],
            "coalesced_queries_per_second": record[
                "coalesced_queries_per_second"
            ],
            "coalesce_window_ms": args.coalesce_ms,
            "identical_neighbor_lists": record["identical_neighbor_lists"],
        },
    })
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended the serve entry to {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    total_queries = args.clients * args.rounds
    print(
        f"serving benchmark: {args.clients} clients x {args.rounds} rounds "
        f"over {args.series} series (length {args.length}, k={args.k}, "
        f"method={args.method})",
        flush=True,
    )

    stream = ecg_stream((args.series + total_queries) * args.length,
                        seed=args.seed)
    workload = make_workload(stream, args.series, total_queries, args.length)
    db = STS3Database(workload.database, sigma=args.sigma,
                      epsilon=args.epsilon)
    client_queries = [
        [np.asarray(q) for q in
         workload.queries[i * args.rounds:(i + 1) * args.rounds]]
        for i in range(args.clients)
    ]

    # Ground truth first: the engine's own answers, computed directly.
    direct = [
        [db.query(q, k=args.k, method=args.method) for q in per_client]
        for per_client in client_queries
    ]

    serial_seconds, serial_results = run_phase(
        db, ServiceConfig(coalesce_window_ms=0.0, max_pending=4096),
        client_queries, args.k, args.method, args.repeats,
    )
    coalesced_seconds, coalesced_results = run_phase(
        db,
        ServiceConfig(coalesce_window_ms=args.coalesce_ms,
                      max_coalesce=args.clients, max_pending=4096),
        client_queries, args.k, args.method, args.repeats,
    )

    serial_ok = identical(serial_results, direct)
    coalesced_ok = identical(coalesced_results, direct)
    record = {
        "phase": "serve",
        "n_clients": args.clients,
        "rounds": args.rounds,
        "total_queries": total_queries,
        "coalesce_window_ms": args.coalesce_ms,
        "serial_seconds": round(serial_seconds, 6),
        "coalesced_seconds": round(coalesced_seconds, 6),
        "serial_queries_per_second": round(
            total_queries / serial_seconds, 2
        ),
        "coalesced_queries_per_second": round(
            total_queries / coalesced_seconds, 2
        ),
        "coalesce_speedup": round(serial_seconds / coalesced_seconds, 3),
        "identical_neighbor_lists": serial_ok and coalesced_ok,
    }
    print(
        f"   serial: {record['serial_seconds']:.3f}s "
        f"({record['serial_queries_per_second']} q/s)"
    )
    print(
        f"coalesced: {record['coalesced_seconds']:.3f}s "
        f"({record['coalesced_queries_per_second']} q/s)"
    )
    print(
        f"  speedup: {record['coalesce_speedup']:.2f}x   "
        f"identical={record['identical_neighbor_lists']}"
    )

    result = {
        "benchmark": "serve",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "workload": {
            "n_series": args.series,
            "n_clients": args.clients,
            "rounds": args.rounds,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
            "method": args.method,
        },
        "phases": [record],
    }
    if str(args.output) != "-":
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    if str(args.trajectory) != "-":
        append_trajectory(record, args, args.trajectory)

    if not record["identical_neighbor_lists"]:
        print("FAIL: a served answer differed from the direct engine call",
              file=sys.stderr)
        return 1
    if (args.min_coalesce_speedup is not None
            and record["coalesce_speedup"] < args.min_coalesce_speedup):
        print(
            f"FAIL: coalesce speedup {record['coalesce_speedup']:.2f}x below "
            f"required {args.min_coalesce_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
