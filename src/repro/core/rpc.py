"""Pipe RPC between the sharded engine and its worker processes.

The sharded engine (:mod:`repro.core.shard`, docs/sharding.md) keeps
one persistent worker process per shard and talks to each over a
duplex :func:`multiprocessing.Pipe`.  Messages reuse the serving
layer's frame format (:mod:`repro.serve.protocol`): a JSON header plus
raw float64 array blobs.  That buys three things at once —

- **no pickling**: queries travel as their exact bytes and results as
  repr-round-trip JSON floats, so what a worker searches (and answers)
  is bit-for-bit what the parent sent, the same contract the TCP
  server already honours;
- **one wire vocabulary**: a frame captured off a shard pipe reads
  exactly like a frame off the network, so docs/serving.md's schema
  knowledge transfers;
- **cheap liveness**: ``Connection.poll(timeout)`` bounds every
  receive, so a dead worker surfaces as :class:`WorkerDied` (the pipe
  reports EOF the moment the process is gone) and a hung one as
  :class:`RpcTimeout` — both detected without signals or sidecar
  threads.

The parent is the only writer on its end and each worker serves its
pipe single-threaded, so requests on one pipe are naturally serialized
and responses never interleave; scatter-gather parallelism comes from
having N pipes, not from multiplexing one.

Replication followers (:mod:`repro.core.replication`,
docs/replication.md) speak the same frames over the same pipes: a
``ship`` carries a contiguous run of raw WAL frames as a uint8 blob,
``subscribe`` probes a follower's apply watermark, and ``promote``
flips it into a primary — see ``OP_SHIP``/``OP_SUBSCRIBE``/
``OP_PROMOTE`` in :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

from multiprocessing.connection import Connection
from typing import Sequence

import numpy as np

from ..exceptions import ReproError
from ..serve.protocol import pack_message, unpack_payload

__all__ = [
    "RpcError",
    "RpcTimeout",
    "WorkerDied",
    "send_frame",
    "send_packed",
    "recv_frame",
]

#: length prefix size of a packed frame; Connection.send_bytes frames
#: messages itself, so the prefix is redundant on a pipe and stripped
#: on receive (kept on send so both ends speak byte-identical frames).
_PREFIX = 4


class RpcError(ReproError):
    """A shard RPC failed (transport-level, not an application error)."""


class RpcTimeout(RpcError):
    """The worker did not answer within the timeout (hung or wedged)."""


class WorkerDied(RpcError):
    """The worker's end of the pipe is gone (process exited or killed)."""


def send_frame(
    conn: Connection, header: dict, arrays: Sequence[np.ndarray] = ()
) -> None:
    """Send one protocol frame; raises :class:`WorkerDied` on a torn pipe."""
    try:
        conn.send_bytes(pack_message(header, arrays))
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise WorkerDied(f"shard pipe closed while sending: {exc}") from exc


def send_packed(conn: Connection, payload: bytes) -> None:
    """Send an already-packed frame (:func:`pack_message` output).

    The scatter path packs its query frame **once** and fans the same
    bytes out to every shard — at 4+ shards the repeated header
    encoding and blob concatenation of per-shard :func:`send_frame`
    calls is measurable parent-side critical path.
    """
    try:
        conn.send_bytes(payload)
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise WorkerDied(f"shard pipe closed while sending: {exc}") from exc


def recv_frame(
    conn: Connection, timeout: float | None = None
) -> tuple[dict, list[np.ndarray]]:
    """Receive one frame as ``(header, arrays)``.

    ``timeout`` bounds the wait in seconds (None blocks forever).
    Raises :class:`RpcTimeout` when nothing arrives in time and
    :class:`WorkerDied` on EOF — the distinction drives the engine's
    restart-vs-degrade decision (a dead worker restarts immediately; a
    hung one is abandoned for this query and restarted behind it).
    """
    try:
        if not conn.poll(timeout):
            raise RpcTimeout(
                f"no response from shard worker within {timeout}s"
            )
        payload = conn.recv_bytes()
    except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise WorkerDied(f"shard pipe closed while receiving: {exc}") from exc
    return unpack_payload(payload[_PREFIX:])
