"""Query results and search statistics shared by all STS3 variants."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Neighbor", "SearchStats", "QueryResult", "aggregate_stats"]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One answer of a k-NN query.

    ``similarity`` is the Jaccard similarity of the query's set
    representation and the neighbour's (higher is more similar);
    ``index`` identifies the series within its database.  Ordering is
    by ``(similarity, -index)`` descending similarity first when
    sorted in reverse.
    """

    similarity: float
    index: int


@dataclass
class SearchStats:
    """Counters describing how much work a query did.

    The benchmarks derive the paper's *pruning rate* and *compression
    rate* from these counters, and the tests use them to verify that
    the accelerated variants actually skip work.
    """

    candidates: int = 0
    exact_computations: int = 0
    pruned: int = 0
    filter_rounds: int = 0
    final_candidates: int = 0

    @property
    def pruning_rate(self) -> float:
        """Fraction of candidates skipped without an exact computation."""
        if self.candidates == 0:
            return 0.0
        return self.pruned / self.candidates

    @property
    def compression_rate(self) -> float:
        """Paper Section 7.4.5: |searchSet after filtering| / |D|.

        The denominator here is :attr:`candidates`, which every search
        variant sets to the number of series *considered* — always the
        full database size |D| (plus any update-buffer entries merged
        into the answer), never a pre-filtered subset — so this ratio
        matches the paper's |D| denominator exactly.  A regression test
        (``tests/core/test_compression_rate.py``) pins that invariant:
        if a future searcher ever reported a smaller candidate pool,
        the rate would silently inflate, which is the deviation this
        guard exists to catch.  For :func:`aggregate_stats` sums the
        property becomes the work-weighted batch-level rate.
        """
        if self.candidates == 0:
            return 0.0
        return self.final_candidates / self.candidates

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Counter-wise sum of two stats (derived rates recompute)."""
        return SearchStats(
            candidates=self.candidates + other.candidates,
            exact_computations=self.exact_computations + other.exact_computations,
            pruned=self.pruned + other.pruned,
            filter_rounds=self.filter_rounds + other.filter_rounds,
            final_candidates=self.final_candidates + other.final_candidates,
        )


@dataclass
class QueryResult:
    """Answer of a k-NN query: neighbours sorted by descending similarity.

    A result may be *degraded* (DESIGN.md §12): when a query deadline
    expired mid-plan or the catalog holds quarantined segments, the
    planner answers from what it could search instead of raising.
    ``complete`` is False for such answers, ``skipped_segments`` names
    what was not searched (quarantined payload names and/or
    deadline-skipped segments), and ``degraded_reason`` says why
    (``"deadline"``, ``"quarantine"``, or ``"deadline+quarantine"``).
    The sharded engine (docs/sharding.md) adds one more degradation
    source: ``skipped_shards`` names shards whose worker died mid-query
    and whose partition is therefore missing from the answer
    (``degraded_reason`` then contains ``"shard"``).  Callers that
    require exact answers should check ``complete``.
    """

    neighbors: list[Neighbor]
    stats: SearchStats = field(default_factory=SearchStats)
    complete: bool = True
    skipped_segments: list[str] = field(default_factory=list)
    degraded_reason: str | None = None
    skipped_shards: list[str] = field(default_factory=list)

    @property
    def best(self) -> Neighbor:
        """The nearest neighbour (highest similarity)."""
        return self.neighbors[0]

    def indices(self) -> list[int]:
        """Database indices of the answers, best first."""
        return [n.index for n in self.neighbors]

    def similarities(self) -> list[float]:
        """Similarities of the answers, best first."""
        return [n.similarity for n in self.neighbors]


def aggregate_stats(results: Iterable[QueryResult]) -> SearchStats:
    """Counter-wise sum of the stats of a whole batch of results.

    The derived rates (:attr:`SearchStats.pruning_rate`,
    :attr:`SearchStats.compression_rate`) of the aggregate are then the
    work-weighted batch-level rates — what a serving dashboard wants —
    rather than a mean of per-query ratios.
    """
    total = SearchStats()
    for result in results:
        total = total.merge(result.stats)
    return total
