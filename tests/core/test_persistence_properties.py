"""Hypothesis property tests for database persistence round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import STS3Database
from repro.core.persistence import load_database, save_database


@st.composite
def database_config(draw):
    n_series = draw(st.integers(min_value=2, max_value=8))
    length = draw(st.integers(min_value=8, max_value=40))
    sigma = draw(st.integers(min_value=1, max_value=5))
    epsilon = draw(st.floats(min_value=0.1, max_value=1.0))
    seed = draw(st.integers(0, 10_000))
    normalize = draw(st.booleans())
    return n_series, length, sigma, epsilon, seed, normalize


@given(database_config())
@settings(max_examples=20, deadline=None)
def test_round_trip_equivalence(tmp_path_factory, config):
    n_series, length, sigma, epsilon, seed, normalize = config
    rng = np.random.default_rng(seed)
    series = [rng.normal(size=length) for _ in range(n_series)]
    db = STS3Database(series, sigma=sigma, epsilon=epsilon, normalize=normalize)

    path = tmp_path_factory.mktemp("persist") / "db.npz"
    save_database(db, path)
    loaded = load_database(path)

    # configuration round-trips
    assert loaded.sigma == db.sigma
    assert loaded.epsilon == pytest.approx(db.epsilon)
    assert loaded.normalize == db.normalize
    # derived state equivalence: identical sets and grids
    assert loaded.grid.n_columns == db.grid.n_columns
    assert loaded.grid.n_rows == db.grid.n_rows
    for a, b in zip(loaded.sets, db.sets):
        assert np.array_equal(a, b)
    # behavioural equivalence on a probe query
    query = rng.normal(size=length)
    a = db.query(query, k=min(3, n_series), method="naive")
    b = loaded.query(query, k=min(3, n_series), method="naive")
    assert a.indices() == b.indices()
    assert a.similarities() == pytest.approx(b.similarities())
    assert loaded.verify_integrity() == []
