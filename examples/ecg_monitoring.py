"""ECG similarity monitoring — the paper's motivating application.

"In a computer-assisted diagnosis, a doctor may want to compare the ECG
time series of a patient to the time series in a database and compare
the k-NN time series to that of the patient to find candidates of
diseases." (Section 1)

This example builds an ECG window database, streams new windows in
(including anomalous ones that break the value bound and exercise the
lazy update buffer of Section 5.3.2), and for each incoming window
reports its nearest historical matches plus a crude anomaly flag based
on the Jaccard similarity of the best match.

Run with::

    python examples/ecg_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import STS3Database
from repro.data import ecg_stream
from repro.data.workloads import make_workload

WINDOW = 192
ANOMALY_THRESHOLD = 0.40  # best-match Jaccard below this is suspicious


def make_anomalous(window: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Inject an arrhythmia-like burst into a normal window."""
    out = window.copy()
    start = int(rng.integers(20, len(window) - 70))
    out[start : start + 60] += rng.normal(0, 4.0, size=60)
    return out


def main() -> None:
    rng = np.random.default_rng(7)
    stream = ecg_stream(260 * WINDOW, seed=7)
    workload = make_workload(stream, n_series=240, n_queries=12, length=WINDOW)

    db = STS3Database(
        workload.database, sigma=3, epsilon=0.4, buffer_capacity=8
    )
    db.indexed_searcher()  # build the inverted list up front

    print(f"historical database: {len(db)} windows of {WINDOW} samples\n")
    print(f"{'window':>8}  {'best match':>10}  {'Jaccard':>8}  verdict")
    for i, window in enumerate(workload.queries):
        # every third window gets an injected anomaly
        incoming = make_anomalous(window, rng) if i % 3 == 2 else window
        result = db.query(incoming, k=3, method="index")
        best = result.best
        verdict = "ANOMALY?" if best.similarity < ANOMALY_THRESHOLD else "normal"
        print(
            f"{i:>8}  #{best.index:>9}  {best.similarity:>8.3f}  {verdict}"
        )
        # Archive the incoming window; anomalous ones may be out-TSs and
        # land in the lazy buffer until it fills.
        db.insert(incoming)

    print(
        f"\nafter streaming: {len(db)} windows "
        f"({len(db.buffer)} buffered, {db.rebuild_count} rebuilds)"
    )


if __name__ == "__main__":
    main()
