"""Tests for set transformation (Algorithms 1 and 6) and CompressedSet."""

import numpy as np
import pytest

from repro.core.grid import Bound, Grid
from repro.core.setrep import CompressedSet, transform, transform_query


def _grid(t_max=63, lo=-3.0, hi=3.0, sigma=2, epsilon=0.5):
    return Grid.from_cell_sizes(Bound(0.0, t_max, (lo,), (hi,)), sigma, epsilon)


class TestTransform:
    def test_sorted_unique(self):
        grid = _grid()
        rng = np.random.default_rng(0)
        cell_set = transform(rng.uniform(-3, 3, size=64), grid)
        assert np.array_equal(cell_set, np.unique(cell_set))

    def test_set_size_at_most_points(self):
        grid = _grid()
        series = np.zeros(64)  # all points in the same rows
        cell_set = transform(series, grid)
        assert len(cell_set) <= 64
        # constant series occupies one cell per column
        assert len(cell_set) == grid.n_columns

    def test_identical_series_identical_sets(self):
        grid = _grid()
        rng = np.random.default_rng(1)
        series = rng.uniform(-3, 3, size=64)
        assert np.array_equal(transform(series, grid), transform(series.copy(), grid))

    def test_small_value_shift_preserved(self):
        """A shift well below epsilon should rarely change the set."""
        grid = _grid(epsilon=1.0)
        rng = np.random.default_rng(2)
        series = rng.uniform(-2, 2, size=64)
        shifted = series + 1e-9
        a, b = transform(series, grid), transform(shifted, grid)
        assert np.array_equal(a, b)

    def test_multidim(self):
        bound = Bound(0.0, 9.0, (-1.0, -1.0), (1.0, 1.0))
        grid = Grid.from_cell_sizes(bound, sigma=2, epsilon=0.5)
        rng = np.random.default_rng(3)
        series = rng.uniform(-1, 1, size=(10, 2))
        cell_set = transform(series, grid)
        assert cell_set.max() < grid.n_cells


class TestTransformQuery:
    def test_in_bound_equals_transform(self):
        grid = _grid()
        rng = np.random.default_rng(4)
        series = rng.uniform(-2.9, 2.9, size=64)
        assert np.array_equal(transform_query(series, grid), transform(series, grid))

    def test_out_points_get_disjoint_ids(self):
        grid = _grid(lo=-1.0, hi=1.0)
        series = np.concatenate([np.zeros(32), np.full(32, 5.0)])  # half outside
        query_set = transform_query(series, grid)
        out_ids = query_set[query_set >= grid.n_cells]
        in_ids = query_set[query_set < grid.n_cells]
        assert len(out_ids) > 0
        assert len(in_ids) > 0

    def test_out_ids_never_collide_with_database(self):
        grid = _grid(lo=-1.0, hi=1.0)
        series = np.full(64, 7.0)  # everything outside
        query_set = transform_query(series, grid)
        assert query_set.min() >= grid.n_cells

    def test_query_longer_than_bound(self):
        """Extra time points beyond t_max are out-points too."""
        grid = _grid(t_max=31)
        series = np.zeros(64)  # indices 32..63 exceed the time bound
        query_set = transform_query(series, grid)
        assert (query_set >= grid.n_cells).any()

    def test_matching_in_bound_portion_still_matches(self):
        """Out-points must not disturb the in-bound cell IDs."""
        grid = _grid(lo=-1.0, hi=1.0)
        inside = np.linspace(-0.9, 0.9, 64)
        mixed = inside.copy()
        mixed[60:] = 9.0  # push the tail out of bound
        set_inside = transform(inside, grid)
        set_mixed = transform_query(mixed, grid)
        in_part = set_mixed[set_mixed < grid.n_cells]
        # every in-bound cell of the mixed query is a cell of `inside`
        # restricted to the first 60 points
        expected = transform(inside[:60], grid)
        assert np.array_equal(in_part, expected)


class TestCompressedSet:
    def test_roundtrip(self):
        ids = np.unique(np.random.default_rng(5).integers(0, 10_000, size=200))
        encoded = CompressedSet.encode(ids)
        assert np.array_equal(encoded.decode(), ids)

    def test_empty(self):
        encoded = CompressedSet.encode(np.empty(0, dtype=np.int64))
        assert encoded.length == 0
        assert encoded.decode().size == 0

    def test_single_element(self):
        encoded = CompressedSet.encode(np.array([42]))
        assert np.array_equal(encoded.decode(), [42])

    def test_compression_shrinks_dense_sets(self):
        ids = np.arange(0, 5000, 3, dtype=np.int64)  # deltas of 3 → uint8
        encoded = CompressedSet.encode(ids)
        assert encoded.nbytes < ids.nbytes / 4

    def test_wide_deltas_use_wider_dtype(self):
        ids = np.array([0, 100_000, 10_000_000], dtype=np.int64)
        encoded = CompressedSet.encode(ids)
        assert np.array_equal(encoded.decode(), ids)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            CompressedSet.encode(np.array([5, 3, 9]))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            CompressedSet.encode(np.array([1, 1, 2]))
