"""Figure 6(a-b) (Appendix B.1): naive STS3 runtime vs σ and vs ε.

"When σ grows, the runtime of STS3 decreases.  This is because a big σ
causes more points to locate in one cell and the cell number gets
smaller" — and symmetrically for ε.  We sweep each parameter with the
other fixed (ε=0.5 / σ=20, the paper's settings) and check the
monotone-decreasing trend.
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload

SIGMAS = [1, 2, 5, 10, 20, 40]
EPSILONS = [0.05, 0.1, 0.2, 0.5, 1.0]


def _batch_time(database, queries, sigma, epsilon):
    db = STS3Database(database, sigma=sigma, epsilon=epsilon, normalize=False)
    with Timer() as t:
        for q in queries:
            db.query(q, k=1, method="naive")
    return t


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(20_000, minimum=200)
    n_queries = scaled(100, minimum=5)
    workload = ecg_workload(n_series, n_queries, length=500, seed=7)

    sigma_rows = []
    for sigma in SIGMAS:
        t = _batch_time(workload.database, workload.queries, sigma, 0.5)
        sigma_rows.append([sigma, t.millis])
    epsilon_rows = []
    for epsilon in EPSILONS:
        t = _batch_time(workload.database, workload.queries, 20, epsilon)
        epsilon_rows.append([epsilon, t.millis])

    report(
        "fig6a_runtime_vs_sigma",
        render_table(
            ["sigma", "runtime ms"],
            sigma_rows,
            title=f"Figure 6(a): naive runtime vs sigma (epsilon=0.5, #series={n_series})",
        ),
    )
    report(
        "fig6b_runtime_vs_epsilon",
        render_table(
            ["epsilon", "runtime ms"],
            epsilon_rows,
            title=f"Figure 6(b): naive runtime vs epsilon (sigma=20, #series={n_series})",
        ),
    )
    # Shape: larger cells are faster than the smallest.  Individual
    # batch timings carry scheduler noise, so compare the best of the
    # two largest-cell settings against the smallest with headroom.
    assert min(r[1] for r in sigma_rows[-2:]) <= sigma_rows[0][1] * 1.15
    assert min(r[1] for r in epsilon_rows[-2:]) <= epsilon_rows[0][1] * 1.15
    return workload


@pytest.mark.parametrize("sigma", [1, 40])
def test_bench_sigma(benchmark, experiment, sigma):
    workload = experiment
    db = STS3Database(workload.database, sigma=sigma, epsilon=0.5, normalize=False)
    query = workload.queries[0]
    benchmark(lambda: db.query(query, k=1, method="naive"))
