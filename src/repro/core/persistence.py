"""Save/load an :class:`~repro.core.database.STS3Database` to disk.

A database is a function of its series, parameters, and *segment
layout*, so the on-disk format stores exactly those — set
representations and searchers are rebuilt on load (they are derived
state, and rebuilding guarantees a loaded database is byte-for-byte
equivalent, a property the tests assert via :meth:`verify_integrity`
and query equivalence).  Buffered (not yet flushed) series are stored
too and re-buffered on load.

**Format version 4** (the default, DESIGN.md §12) is built for crash
safety:

- a single-file container: an 8-byte magic, one ``.npz`` payload per
  segment **each followed by a CRC32 footer**, a buffer payload, a JSON
  manifest, and a fixed trailer locating the manifest;
- every write goes to a temp file that is fsynced and then
  ``os.replace``-d over the target, so an interrupted save never
  clobbers the previous good archive;
- :func:`load_database` verifies every checksum and **quarantines**
  corrupt segment payloads (recorded on
  ``db.catalog.quarantined``, surfaced in query results and the
  ``sts3_quarantined_segments`` gauge) instead of raising — only a
  corrupt manifest/trailer, which leaves nothing trustworthy to load,
  is a :class:`~repro.exceptions.DatasetError`;
- the manifest records ``wal_seq``, the last write-ahead-log sequence
  the archive covers, which is what lets :func:`recover_database`
  replay exactly the tail of the WAL (see :mod:`repro.core.wal` and
  docs/durability.md).

Earlier formats still load: v1 (pre-segmentation single grid), v2
(segment table), v3 (v2 + optional packed bitmaps) are one-``.npz``
archives; ``save_database(..., format_version=3)`` still writes one
(now atomically).  Transient I/O errors on either path are retried
with capped, jittered, deterministically-seeded exponential backoff
(``sts3_io_retries_total``).
"""

from __future__ import annotations

import ast
import io
import json
import os
import random
import struct
import time
import zipfile
from pathlib import Path
from zlib import crc32

import numpy as np

from .. import faults
from ..exceptions import DatasetError
from ..obs import get_registry, span
from .bitset import BitsetStore
from .cache import QueryResultCache
from .catalog import QuarantineRecord
from .database import STS3Database
from .grid import Bound, Grid
from .wal import WriteAheadLog, decode_series, replay_wal, scan_wal

__all__ = [
    "save_database",
    "load_database",
    "recover_database",
    "verify_archive",
    "default_wal_dir",
]

#: bumped on any incompatible change to the archive layout.
FORMAT_VERSION = 4

#: versions this loader understands.
SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: first 8 bytes of a v4 archive.
DB_MAGIC = b"STS3DB4\n"

#: trailer: manifest offset (u64), length (u32), crc32 (u32), end magic.
_TRAILER = struct.Struct("<QII8s")
_END_MAGIC = b"STS3END4"
_FOOTER = struct.Struct("<I")  # CRC32 footer after each payload blob

#: retry policy around persistence I/O — exponential backoff with
#: jitter from a deterministically-seeded RNG (reseed `_retry_rng` in
#: tests for reproducible schedules), capped per sleep and in attempts.
RETRY_ATTEMPTS = 4
RETRY_BASE_DELAY = 0.005
RETRY_MAX_DELAY = 0.25
_retry_rng = random.Random(0x5753)


def _with_retries(op: str, fn):
    """Run ``fn`` retrying transient ``OSError`` with backoff.

    :class:`~repro.faults.SimulatedCrash` is *not* an OSError and
    propagates immediately — a crash must never be retried into
    oblivion.  Under an installed fault plan the backoff sleeps on the
    plan's virtual clock, so tests never actually wait.
    """
    plan = faults.get_plan()
    sleep = plan.sleep if plan is not None else time.sleep
    delay = RETRY_BASE_DELAY
    for attempt in range(1, RETRY_ATTEMPTS + 1):
        try:
            return fn()
        except OSError:
            if attempt == RETRY_ATTEMPTS:
                raise
            get_registry().counter(
                "sts3_io_retries_total", "persistence I/O retries, by operation"
            ).inc(op=op)
            sleep(delay * (0.5 + _retry_rng.random()))
            delay = min(delay * 2.0, RETRY_MAX_DELAY)


def default_wal_dir(path: str | Path) -> Path:
    """The conventional WAL directory for the archive at ``path``."""
    return Path(str(path) + ".wal")


def _fsync_directory(directory: Path) -> None:
    """Make a directory entry durable (best-effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _pack(series_list: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray, int]:
    """Pad series into one matrix + a lengths vector.

    Multi-dimensional series are flattened per time step; the number of
    dims travels in the header so unpacking can restore the shape.
    """
    if not series_list:
        return np.zeros((0, 0)), np.zeros(0, dtype=np.int64), 1
    n_dims = 1 if series_list[0].ndim == 1 else series_list[0].shape[1]
    lengths = np.asarray([len(s) for s in series_list], dtype=np.int64)
    width = int(lengths.max()) * n_dims
    matrix = np.zeros((len(series_list), width), dtype=np.float64)
    for row, series in zip(matrix, series_list):
        flat = series.reshape(-1)
        row[: flat.size] = flat
    return matrix, lengths, n_dims


def _unpack(
    matrix: np.ndarray, lengths: np.ndarray, n_dims: int, copy: bool = True
) -> list[np.ndarray]:
    """Split a padded matrix back into per-series arrays.

    With ``copy=False`` each series is a *view* into ``matrix`` — the
    zero-copy path over a mapped archive.  Views are read-only there
    (the memmap is opened ``mode="r"``), which is safe: stored series
    are never mutated, only transformed and compared.
    """
    out = []
    for row, length in zip(matrix, lengths.tolist()):
        flat = row[: length * n_dims]
        if n_dims == 1:
            out.append(flat.copy() if copy else flat)
        else:
            out.append(flat.reshape(length, n_dims))
    return out


def _segment_entry(segment) -> dict:
    grid = segment.grid
    return {
        "size": len(segment),
        "bound": {
            "t_min": grid.bound.t_min,
            "t_max": grid.bound.t_max,
            "x_min": list(grid.bound.x_min),
            "x_max": list(grid.bound.x_max),
        },
        "col_width": grid.col_width,
        "row_heights": list(grid.row_heights),
    }


def _segment_grid(entry: dict) -> Grid:
    bound = Bound(
        entry["bound"]["t_min"],
        entry["bound"]["t_max"],
        tuple(entry["bound"]["x_min"]),
        tuple(entry["bound"]["x_max"]),
    )
    return Grid(bound, entry["col_width"], tuple(entry["row_heights"]))


def _header_params(db: STS3Database) -> dict:
    wal = getattr(db, "wal", None)
    return {
        "sigma": db.sigma,
        "epsilon": list(db.epsilon) if isinstance(db.epsilon, tuple) else db.epsilon,
        "epsilon_is_tuple": isinstance(db.epsilon, tuple),
        "normalize": db.normalize,
        "value_padding": db.value_padding,
        "buffer_capacity": db.buffer.capacity,
        "default_scale": db.default_scale,
        "default_max_scale": db.default_max_scale,
        "rebuild_count": db.rebuild_count,
        "wal_seq": wal.last_seq if wal is not None else getattr(db, "wal_seq", 0),
    }


def _npz_bytes(compressed: bool = True, **arrays) -> bytes:
    """``.npz`` bytes for ``arrays``.

    v4 payloads are written *uncompressed* (STORED zip members): that is
    what lets the mmap loader hand out :func:`np.frombuffer` views
    straight over the archive instead of inflating copies.  v3 keeps
    compression — it is a single monolithic blob with no mapped path.
    """
    buf = io.BytesIO()
    if compressed:
        np.savez_compressed(buf, **arrays)
    else:
        np.savez(buf, **arrays)
    return buf.getvalue()


def _atomic_write(path: Path, writer, op: str) -> None:
    """Write via temp-then-``os.replace`` so the old file always survives.

    ``writer(fileobj)`` produces the content; any failure (torn write,
    crash, ENOSPC) leaves the target untouched and removes the temp.
    """
    temp = path.with_name(path.name + ".tmp")

    def attempt() -> None:
        try:
            with open(temp, "wb") as fh:
                writer(fh)
                fh.flush()
                faults.fault_point("persist.sync")
                os.fsync(fh.fileno())
            faults.fault_point("persist.rename")
            os.replace(temp, path)
            _fsync_directory(path.parent)
        except BaseException:
            temp.unlink(missing_ok=True)
            raise

    _with_retries(op, attempt)


def save_database(
    db: STS3Database,
    path: str | Path,
    pack_bitsets: bool = False,
    format_version: int | None = None,
    checkpoint_wal: bool = True,
    extras: dict | None = None,
) -> None:
    """Write ``db`` to ``path`` atomically (temp file + ``os.replace``).

    The default writes format v4 (checksummed, crash-safe);
    ``format_version=3`` keeps the legacy single-``.npz`` layout for
    downgrade paths.  With ``pack_bitsets=True`` every segment's packed
    bitset (built on demand; segments whose memory gate declines are
    skipped) is archived alongside the series, so a loaded database
    answers its first popcount-kernel query without re-packing.

    If the database has an attached write-ahead log, a successful save
    is a *checkpoint*: the archive records the WAL position it covers
    and (with ``checkpoint_wal=True``) retires the now-redundant log
    generations.

    ``extras`` is an opaque JSON-serializable dict stored in the
    manifest and surfaced as ``db.archive_extras`` on load — the hook
    the sharded engine uses to checkpoint its global-id tables inside
    each shard archive (docs/sharding.md).
    """
    version = FORMAT_VERSION if format_version is None else int(format_version)
    if version not in (3, 4):
        raise DatasetError(
            f"can only write format versions 3 and 4, not {format_version!r}"
        )
    path = Path(path)
    wal = getattr(db, "wal", None)
    if wal is not None:
        wal.sync()  # everything the archive captures must be acknowledged
    all_series = db.catalog.all_series()
    with span(
        "persist.save",
        series=len(all_series),
        segments=len(db.catalog.segments),
        buffered=len(db.buffer.series),
        version=version,
    ):
        if version == 3:
            _save_v3(db, path, pack_bitsets, extras)
        else:
            _save_v4(db, path, pack_bitsets, extras)
    db.wal_seq = _header_params(db)["wal_seq"]
    if wal is not None and checkpoint_wal:
        wal.checkpoint()
    get_registry().counter(
        "sts3_persist_total", "database archive writes and reads"
    ).inc(op="save")


def _save_v3(
    db: STS3Database, path: Path, pack_bitsets: bool, extras: dict | None = None
) -> None:
    """Legacy one-``.npz`` archive (format v3), written atomically."""
    if not str(path).endswith(".npz"):
        path = path.with_name(path.name + ".npz")  # np.savez compatibility
    header = {"format_version": 3, **_header_params(db)}
    if extras:
        header["extras"] = extras
    header["segments"] = [_segment_entry(seg) for seg in db.catalog.segments]
    bitset_arrays: dict[str, np.ndarray] = {}
    if pack_bitsets:
        packed_positions = []
        for position, segment in enumerate(db.catalog.segments):
            store = segment.bitset_store()
            if store is None:
                continue
            packed_positions.append(position)
            bitset_arrays[f"bitset_vocab_{position}"] = store.vocab
            bitset_arrays[f"bitset_matrix_{position}"] = store.matrix
        header["bitset_segments"] = packed_positions
    matrix, lengths, n_dims = _pack(db.catalog.all_series())
    buf_matrix, buf_lengths, _ = _pack(db.buffer.series)
    blob = _npz_bytes(
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        n_dims=np.int64(n_dims),
        series=matrix,
        lengths=lengths,
        buffer_series=buf_matrix,
        buffer_lengths=buf_lengths,
        **bitset_arrays,
    )
    _atomic_write(
        path, lambda fh: faults.fault_write(fh, blob, "persist.payload.write"), "save"
    )


def _save_v4(
    db: STS3Database, path: Path, pack_bitsets: bool, extras: dict | None = None
) -> None:
    """Checksummed container: per-segment payloads + manifest + trailer."""
    segment_entries = []
    blobs: list[bytes] = []
    n_dims = 1
    for segment in db.catalog.segments:
        entry = _segment_entry(segment)
        matrix, lengths, n_dims = _pack(segment.series)
        arrays = {"series": matrix, "lengths": lengths}
        entry["bitset"] = False
        if pack_bitsets:
            store = segment.bitset_store()
            if store is not None:
                arrays["bitset_vocab"] = store.vocab
                arrays["bitset_matrix"] = store.matrix
                entry["bitset"] = True
        blob = _npz_bytes(compressed=False, **arrays)
        entry["payload"] = {"length": len(blob), "crc32": crc32(blob)}
        segment_entries.append(entry)
        blobs.append(blob)
    buf_matrix, buf_lengths, _ = _pack(db.buffer.series)
    buffer_blob = _npz_bytes(compressed=False, series=buf_matrix, lengths=buf_lengths)
    buffer_entry = {
        "size": len(db.buffer.series),
        "payload": {"length": len(buffer_blob), "crc32": crc32(buffer_blob)},
    }
    # Assign offsets now that every blob size is known.
    cursor = len(DB_MAGIC)
    for entry, blob in zip(segment_entries + [buffer_entry], blobs + [buffer_blob]):
        entry["payload"]["offset"] = cursor
        cursor += len(blob) + _FOOTER.size
    manifest = {
        "format_version": 4,
        **_header_params(db),
        "n_dims": n_dims,
        "segments": segment_entries,
        "buffer_payload": buffer_entry,
    }
    if extras:
        manifest["extras"] = extras
    manifest_bytes = json.dumps(manifest).encode()

    def write(fh) -> None:
        fh.write(DB_MAGIC)
        for blob in blobs:
            faults.fault_write(fh, blob, "persist.payload.write")
            fh.write(_FOOTER.pack(crc32(blob)))
        faults.fault_write(fh, buffer_blob, "persist.payload.write")
        fh.write(_FOOTER.pack(crc32(buffer_blob)))
        faults.fault_write(fh, manifest_bytes, "persist.manifest.write")
        fh.write(
            _TRAILER.pack(cursor, len(manifest_bytes), crc32(manifest_bytes), _END_MAGIC)
        )

    _atomic_write(path, write, "save")


def load_database(
    path: str | Path,
    mmap: bool = False,
    max_workers: int | None = None,
    cache_bytes: int = 0,
) -> STS3Database:
    """Rebuild a database previously written by :func:`save_database`.

    v4 archives are checksum-verified; a segment payload that fails its
    CRC is *quarantined* — the rest of the database loads, the loss is
    recorded on ``db.catalog.quarantined``, and queries degrade
    gracefully (``complete=False``) instead of raising.  Only an
    unreadable manifest (nothing trustworthy to load) raises
    :class:`~repro.exceptions.DatasetError`.

    With ``mmap=True`` (v4 archives only; earlier formats silently fall
    back to the eager path) segment payloads stay on disk: each segment
    is restored from its manifest row alone and maps its series as
    zero-copy buffer views on first touch.  Checksum verification moves
    with the payload — the manifest, trailer, and per-payload footers
    are still verified at open (structural damage quarantines exactly
    like the eager path), but a payload whose *bytes* rot after open
    raises :class:`~repro.exceptions.DatasetError` at first touch
    instead, since there is no load phase left to quarantine into.

    ``max_workers`` and ``cache_bytes`` configure the loaded database's
    executor pool and query-result cache (see :class:`STS3Database`).
    """
    with span("persist.load", mmap=mmap):
        db = _with_retries("load", lambda: _load_database(path, mmap))
    if max_workers is not None:
        db.max_workers = max_workers
    if cache_bytes:
        db.result_cache = QueryResultCache(int(cache_bytes))
    get_registry().counter(
        "sts3_persist_total", "database archive writes and reads"
    ).inc(op="load")
    return db


def _load_database(path: str | Path, mmap: bool = False) -> STS3Database:
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no database archive at {path}")
    faults.fault_point("persist.read")
    if mmap:
        with open(path, "rb") as fh:
            magic = fh.read(len(DB_MAGIC))
        if magic == DB_MAGIC:
            return _load_v4_mapped(path)
        return _load_legacy(path)  # pre-v4: nothing addressable to map
    data = path.read_bytes()
    if data[: len(DB_MAGIC)] == DB_MAGIC:
        return _load_v4(path, data)
    return _load_legacy(path)


# -- format v4 ----------------------------------------------------------


def _read_manifest(path: Path, data) -> dict:
    """Parse the manifest out of ``data`` (bytes or a uint8 memmap)."""
    if len(data) < len(DB_MAGIC) + _TRAILER.size:
        raise DatasetError(f"{path}: v4 archive truncated before its trailer")
    offset, length, checksum, end_magic = _TRAILER.unpack_from(
        data, len(data) - _TRAILER.size
    )
    if end_magic != _END_MAGIC:
        raise DatasetError(f"{path}: v4 archive trailer is damaged")
    blob = bytes(data[offset : offset + length])
    if len(blob) < length or crc32(blob) != checksum:
        raise DatasetError(f"{path}: v4 manifest fails its checksum")
    try:
        manifest = json.loads(blob.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DatasetError(f"{path}: v4 manifest is not valid JSON") from exc
    if manifest.get("format_version") not in SUPPORTED_VERSIONS:
        raise DatasetError(
            f"{path}: unsupported format version "
            f"{manifest.get('format_version')!r} (expected one of "
            f"{SUPPORTED_VERSIONS})"
        )
    return manifest


def _payload_blob(data: bytes, entry: dict) -> tuple[bytes | None, str | None]:
    """The verified blob for a manifest payload entry, or a problem."""
    payload = entry["payload"]
    offset, length = int(payload["offset"]), int(payload["length"])
    end = offset + length
    if end + _FOOTER.size > len(data):
        return None, "payload extends past end of archive"
    blob = data[offset:end]
    (footer,) = _FOOTER.unpack_from(data, end)
    actual = crc32(blob)
    if actual != int(payload["crc32"]) or actual != footer:
        return None, "checksum mismatch"
    return blob, None


def _load_v4(path: Path, data: bytes) -> STS3Database:
    manifest = _read_manifest(path, data)
    n_dims = int(manifest["n_dims"])
    epsilon = manifest["epsilon"]
    if manifest["epsilon_is_tuple"]:
        epsilon = tuple(epsilon)

    survivors: list[tuple[list[np.ndarray], Grid]] = []
    survivor_meta: list[tuple[int, dict, dict | None]] = []  # (pos, entry, bitset)
    quarantined: list[QuarantineRecord] = []
    for position, entry in enumerate(manifest["segments"]):
        name = f"segment-{position}"
        blob, problem = _payload_blob(data, entry)
        if blob is not None:
            try:
                with np.load(io.BytesIO(blob)) as payload:
                    series = _unpack(payload["series"], payload["lengths"], n_dims)
                    bitset = None
                    if entry.get("bitset"):
                        bitset = {
                            "vocab": payload["bitset_vocab"],
                            "matrix": payload["bitset_matrix"],
                        }
            except Exception:
                blob, problem = None, "unreadable payload"
        if blob is None:
            quarantined.append(
                QuarantineRecord(name, int(entry["size"]), problem)
            )
            continue
        if len(series) != int(entry["size"]):
            quarantined.append(
                QuarantineRecord(
                    name,
                    int(entry["size"]),
                    f"payload holds {len(series)} series, manifest says "
                    f"{entry['size']}",
                )
            )
            continue
        survivors.append((series, _segment_grid(entry)))
        survivor_meta.append((position, entry, bitset))
    if not survivors:
        raise DatasetError(
            f"{path}: every segment payload failed verification "
            f"({'; '.join(f'{q.name}: {q.reason}' for q in quarantined)})"
        )

    db = STS3Database.from_segments(
        survivors,
        sigma=manifest["sigma"],
        epsilon=epsilon,
        normalize=manifest["normalize"],
        value_padding=manifest["value_padding"],
        buffer_capacity=manifest["buffer_capacity"],
        default_scale=manifest["default_scale"],
        default_max_scale=manifest["default_max_scale"],
    )
    db.rebuild_count = manifest["rebuild_count"]
    db.wal_seq = int(manifest.get("wal_seq", 0))
    for segment, (position, entry, bitset) in zip(db.catalog.segments, survivor_meta):
        segment.payload_crc32 = int(entry["payload"]["crc32"])
        if bitset is not None:
            _attach_bitset(segment, bitset["vocab"], bitset["matrix"], path)
    for record in quarantined:
        db.catalog.quarantine(record)

    buffer_entry = manifest["buffer_payload"]
    blob, problem = _payload_blob(data, buffer_entry)
    buffered: list[np.ndarray] = []
    if blob is None:
        db.catalog.quarantine(
            QuarantineRecord("buffer", int(buffer_entry["size"]), problem)
        )
    else:
        try:
            with np.load(io.BytesIO(blob)) as payload:
                buffered = _unpack(payload["series"], payload["lengths"], n_dims)
        except Exception:
            db.catalog.quarantine(
                QuarantineRecord(
                    "buffer", int(buffer_entry["size"]), "unreadable payload"
                )
            )
    for series_item in buffered:
        db.buffer.add(series_item)
    db.archive_extras = manifest.get("extras", {})
    return db


def _attach_bitset(segment, vocab, matrix, path) -> None:
    lengths = np.asarray([len(s) for s in segment.sets], dtype=np.int64)
    # from_parts validates the matrix shape against the rebuilt sets,
    # so a truncated archive fails here instead of miscounting.
    segment._bitset = BitsetStore.from_parts(vocab, matrix, lengths)
    segment._bitset_decided = True
    get_registry().gauge(
        "sts3_bitset_bytes_resident",
        "packed bitset bytes, by segment and residency",
    ).set(
        segment._bitset.nbytes,
        segment=str(segment.segment_id),
        state="resident",
    )


# -- format v4, mapped (zero-copy) ---------------------------------------


class _BufferIO(io.RawIOBase):
    """A seekable read-only file over a memoryview (no copies).

    ``zipfile`` needs a file object to walk the npz directory; wrapping
    the mapped blob here lets it read central-directory records without
    materializing the payload.
    """

    def __init__(self, view: memoryview):
        self._view = view
        self._pos = 0

    def readable(self) -> bool:
        return True

    def seekable(self) -> bool:
        return True

    def seek(self, pos: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            self._pos = pos
        elif whence == io.SEEK_CUR:
            self._pos += pos
        else:
            self._pos = len(self._view) + pos
        return self._pos

    def tell(self) -> int:
        return self._pos

    def readinto(self, b) -> int:
        n = min(len(b), len(self._view) - self._pos)
        if n <= 0:
            return 0
        b[:n] = self._view[self._pos : self._pos + n]
        self._pos += n
        return n


def _npy_view(buf: memoryview) -> np.ndarray:
    """A zero-copy ndarray over the raw bytes of one ``.npy`` member."""
    if bytes(buf[:6]) != b"\x93NUMPY":
        raise DatasetError("mapped npz member is not an npy array")
    major = buf[6]
    if major == 1:
        (hlen,) = struct.unpack_from("<H", buf, 8)
        header_start = 10
    else:
        (hlen,) = struct.unpack_from("<I", buf, 8)
        header_start = 12
    data_start = header_start + hlen
    header = ast.literal_eval(
        bytes(buf[header_start:data_start]).decode("latin1")
    )
    if header.get("fortran_order"):
        raise DatasetError("mapped loader does not support fortran-order arrays")
    dtype = np.dtype(header["descr"])
    shape = header["shape"]
    count = int(np.prod(shape)) if shape else 1
    return np.frombuffer(buf, dtype=dtype, count=count, offset=data_start).reshape(
        shape
    )


def _npz_views(blob) -> dict[str, np.ndarray]:
    """Arrays of an (uncompressed) npz blob as views over its buffer.

    STORED members — what :func:`_npz_bytes` writes for v4 — become
    :func:`np.frombuffer` views at ``header_offset + 30 + name_len +
    extra_len`` (the zip local-header layout).  DEFLATED members (old
    archives saved compressed) fall back to an inflated copy, which
    still keeps the load lazy per segment.
    """
    view = memoryview(blob)
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(io.BufferedReader(_BufferIO(view))) as zf:
        for info in zf.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            if info.compress_type == zipfile.ZIP_STORED:
                nlen, xlen = struct.unpack_from(
                    "<HH", view, info.header_offset + 26
                )
                start = info.header_offset + 30 + nlen + xlen
                arrays[name] = _npy_view(view[start : start + info.file_size])
            else:
                arrays[name] = np.load(io.BytesIO(zf.read(info)))
    return arrays


def _mapped_payload_problem(data, entry: dict) -> str | None:
    """Structural verification of one payload *without* reading its bytes.

    Bounds and the CRC footer (8 bytes) are checked against the
    manifest; the expensive whole-blob CRC is deferred to first touch
    (:class:`_MappedPayload`).  Damage detectable here quarantines at
    open, exactly like the eager loader.
    """
    payload = entry["payload"]
    offset, length = int(payload["offset"]), int(payload["length"])
    end = offset + length
    if end + _FOOTER.size > len(data):
        return "payload extends past end of archive"
    (footer,) = _FOOTER.unpack_from(data, end)
    if footer != int(payload["crc32"]):
        return "checksum mismatch"
    return None


class _MappedPayload:
    """Zero-arg loader over one mapped v4 payload (:meth:`Segment.lazy`).

    Holds only the archive path and payload coordinates — the memmap is
    opened lazily and never pickled, so a database with mapped segments
    travels to ``query_batch`` worker processes intact (each worker
    re-maps its own view on first touch).
    """

    def __init__(self, path, offset, length, crc, n_dims, size, has_bitset, name):
        self.path = str(path)
        self.offset = int(offset)
        self.length = int(length)
        self.crc = int(crc)
        self.n_dims = int(n_dims)
        self.size = int(size)
        self.has_bitset = bool(has_bitset)
        self.name = name
        self._mmap = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_mmap"] = None
        return state

    def __call__(self) -> dict:
        if self._mmap is None:
            self._mmap = np.memmap(self.path, dtype=np.uint8, mode="r")
        blob = self._mmap[self.offset : self.offset + self.length]
        # First-touch verification: the one full read the mapped path
        # cannot avoid, paid exactly once per touched segment.
        if crc32(blob) != self.crc:
            raise DatasetError(
                f"{self.path}: payload {self.name} fails its checksum "
                "on first touch"
            )
        arrays = _npz_views(blob)
        series = _unpack(
            arrays["series"], np.asarray(arrays["lengths"]), self.n_dims,
            copy=False,
        )
        if len(series) != self.size:
            raise DatasetError(
                f"{self.path}: payload {self.name} holds {len(series)} "
                f"series, manifest says {self.size}"
            )
        payload: dict = {"series": series}
        if self.has_bitset:
            payload["bitset"] = {
                "vocab": arrays["bitset_vocab"],
                "matrix": arrays["bitset_matrix"],
            }
        return payload


def _load_v4_mapped(path: Path) -> STS3Database:
    """Zero-copy cold start: manifest now, payload bytes on first touch."""
    data = np.memmap(path, dtype=np.uint8, mode="r")
    manifest = _read_manifest(path, data)
    n_dims = int(manifest["n_dims"])
    epsilon = manifest["epsilon"]
    if manifest["epsilon_is_tuple"]:
        epsilon = tuple(epsilon)

    shell = STS3Database._assembly_shell(
        sigma=manifest["sigma"],
        epsilon=epsilon,
        normalize=manifest["normalize"],
        value_padding=manifest["value_padding"],
        default_scale=manifest["default_scale"],
        default_max_scale=manifest["default_max_scale"],
    )
    quarantined: list[QuarantineRecord] = []
    for position, entry in enumerate(manifest["segments"]):
        name = f"segment-{position}"
        problem = _mapped_payload_problem(data, entry)
        if problem is not None:
            quarantined.append(
                QuarantineRecord(name, int(entry["size"]), problem)
            )
            continue
        payload = entry["payload"]
        loader = _MappedPayload(
            path, payload["offset"], payload["length"], payload["crc32"],
            n_dims, entry["size"], bool(entry.get("bitset")), name,
        )
        segment = shell.catalog.adopt_lazy(
            _segment_grid(entry), int(entry["size"]), loader,
            payload_bytes=int(payload["length"]),
        )
        segment.payload_crc32 = int(payload["crc32"])
    if not shell.catalog.segments:
        raise DatasetError(
            f"{path}: every segment payload failed verification "
            f"({'; '.join(f'{q.name}: {q.reason}' for q in quarantined)})"
        )
    shell._finish_assembly(manifest["buffer_capacity"])
    shell.rebuild_count = manifest["rebuild_count"]
    shell.wal_seq = int(manifest.get("wal_seq", 0))
    for record in quarantined:
        shell.catalog.quarantine(record)

    # The buffer is small and mutable (adds re-transform it), so it
    # loads eagerly even on the mapped path.
    buffer_entry = manifest["buffer_payload"]
    blob, problem = _payload_blob(data, buffer_entry)
    buffered: list[np.ndarray] = []
    if blob is None:
        shell.catalog.quarantine(
            QuarantineRecord("buffer", int(buffer_entry["size"]), problem)
        )
    else:
        try:
            with np.load(io.BytesIO(bytes(blob))) as payload:
                buffered = _unpack(payload["series"], payload["lengths"], n_dims)
        except Exception:
            shell.catalog.quarantine(
                QuarantineRecord(
                    "buffer", int(buffer_entry["size"]), "unreadable payload"
                )
            )
    for series_item in buffered:
        shell.buffer.add(series_item)
    shell.archive_extras = manifest.get("extras", {})
    return shell


# -- formats v1-v3 ------------------------------------------------------


def _load_legacy(path: Path) -> STS3Database:
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["header"]).decode())
        except (KeyError, json.JSONDecodeError) as exc:
            raise DatasetError(f"{path} is not an STS3 database archive") from exc
        if header.get("format_version") not in SUPPORTED_VERSIONS:
            raise DatasetError(
                f"{path}: unsupported format version "
                f"{header.get('format_version')!r} (expected one of "
                f"{SUPPORTED_VERSIONS})"
            )
        n_dims = int(archive["n_dims"])
        series = _unpack(archive["series"], archive["lengths"], n_dims)
        buffered = _unpack(archive["buffer_series"], archive["buffer_lengths"], n_dims)
        bitsets: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for position in header.get("bitset_segments", []):
            try:
                bitsets[int(position)] = (
                    archive[f"bitset_vocab_{position}"],
                    archive[f"bitset_matrix_{position}"],
                )
            except KeyError as exc:
                raise DatasetError(
                    f"{path}: header names a packed bitset for segment "
                    f"{position} but the arrays are missing"
                ) from exc

    epsilon = header["epsilon"]
    if header["epsilon_is_tuple"]:
        epsilon = tuple(epsilon)

    if header["format_version"] == 1 or "segments" not in header:
        # Legacy single-grid archive: constructing fresh reproduces the
        # pre-segmentation engine exactly (one bootstrap segment with a
        # tight bound + padding).  Stored series are already normalized;
        # construct raw then restore the flag.
        db = STS3Database(
            series,
            sigma=header["sigma"],
            epsilon=epsilon,
            normalize=False,
            value_padding=header["value_padding"],
            buffer_capacity=header["buffer_capacity"],
            default_scale=header["default_scale"],
            default_max_scale=header["default_max_scale"],
        )
        db.normalize = header["normalize"]
    else:
        payloads = []
        cursor = 0
        for entry in header["segments"]:
            size = int(entry["size"])
            payloads.append((series[cursor : cursor + size], _segment_grid(entry)))
            cursor += size
        if cursor != len(series):
            raise DatasetError(
                f"{path}: segment table covers {cursor} series, archive "
                f"holds {len(series)}"
            )
        db = STS3Database.from_segments(
            payloads,
            sigma=header["sigma"],
            epsilon=epsilon,
            normalize=header["normalize"],
            value_padding=header["value_padding"],
            buffer_capacity=header["buffer_capacity"],
            default_scale=header["default_scale"],
            default_max_scale=header["default_max_scale"],
        )
    db.rebuild_count = header["rebuild_count"]
    db.wal_seq = int(header.get("wal_seq", 0))
    for position, (vocab, matrix) in bitsets.items():
        if not 0 <= position < len(db.catalog.segments):
            raise DatasetError(
                f"{path}: packed bitset refers to segment {position}, "
                f"archive restored {len(db.catalog.segments)} segments"
            )
        _attach_bitset(db.catalog.segments[position], vocab, matrix, path)
    for series_item in buffered:
        db.buffer.add(series_item)
    db.archive_extras = header.get("extras", {})
    return db


# -- recovery -----------------------------------------------------------


def apply_wal_records(
    db: STS3Database, records: list[dict], from_seq: int, observer=None
) -> int:
    """Re-apply WAL records with ``seq > from_seq`` to ``db``.

    Replay is deterministic and side-effect-free on the log itself:
    the database's WAL logging is suppressed while records are applied
    (they are already on disk), so recovery never re-writes history.
    Returns the number of records applied.

    ``"note"`` records are annotations other layers interleave with
    mutations (the sharded engine journals each insert's global series
    id this way, docs/sharding.md); they change nothing on replay.
    ``observer(record, info)`` — when given — is called after each
    record is applied, with ``info`` describing what the mutation did:
    for inserts ``{"path": "direct"|"buffered", "sealed": bool}``, for
    flushes ``{"sealed": bool}``, None otherwise.  That is what lets a
    caller rebuild bookkeeping (e.g. id tables) that tracks the
    database's structural transitions without re-deriving them.
    """
    applied = 0
    db._replaying = True
    try:
        for record in records:
            if record["seq"] <= from_seq:
                continue
            op = record["op"]
            info = None
            if op == "note":
                pass  # annotation only; nothing to re-apply
            elif op == "insert":
                buffered_before = len(db.buffer)
                rebuilds_before = db.rebuild_count
                db._insert_prepared(decode_series(record["series"]))
                if len(db.buffer) == buffered_before + 1:
                    info = {"path": "buffered", "sealed": False}
                elif db.rebuild_count > rebuilds_before:
                    # landed in the buffer, which filled and sealed
                    info = {"path": "buffered", "sealed": True}
                else:
                    info = {"path": "direct", "sealed": False}
            elif op == "flush":
                rebuilds_before = db.rebuild_count
                db.flush()
                info = {"sealed": db.rebuild_count > rebuilds_before}
            elif op == "compact":
                db.compact(record.get("min_size"))
            elif op == "merge":
                # Background maintenance merges journal their positional
                # run; re-merging the same positions over the replayed
                # layout rebuilds the identical segment (Segment.build
                # is a pure function of the run's series).
                db.merge_run(record["start"], record["stop"])
            else:
                raise DatasetError(f"unknown WAL operation {op!r} during replay")
            if observer is not None:
                observer(record, info)
            applied += 1
    finally:
        db._replaying = False
    return applied


def recover_database(
    path: str | Path,
    wal_dir: str | Path | None = None,
    fsync_batch: int | None = None,
    mmap: bool = False,
    max_workers: int | None = None,
    cache_bytes: int = 0,
    observer=None,
) -> STS3Database:
    """Crash recovery: last checkpoint archive + write-ahead-log replay.

    Loads the archive at ``path`` (quarantining corrupt segments),
    replays the WAL tail (records past the archive's ``wal_seq``;
    a torn tail is truncated first), and re-attaches a live WAL so
    the recovered database keeps journaling.  ``wal_dir`` defaults to
    :func:`default_wal_dir`; a missing WAL directory simply means
    nothing to replay.  ``mmap``/``max_workers``/``cache_bytes`` are
    forwarded to :func:`load_database` (replaying an insert against a
    mapped segment materializes just that segment); ``observer`` to
    :func:`apply_wal_records`.
    """
    path = Path(path)
    wal_dir = default_wal_dir(path) if wal_dir is None else Path(wal_dir)
    with span("recover", archive=str(path)):
        db = load_database(
            path, mmap=mmap, max_workers=max_workers, cache_bytes=cache_bytes
        )
        records, report = replay_wal(wal_dir, truncate=True)
        applied = apply_wal_records(
            db, records, from_seq=db.wal_seq, observer=observer
        )
        wal = WriteAheadLog(
            wal_dir,
            **({"fsync_batch": fsync_batch} if fsync_batch is not None else {}),
            start_seq=max(db.wal_seq, report.last_seq),
        )
        db.attach_wal(wal)
    get_registry().counter(
        "sts3_recoveries_total", "databases recovered from archive + WAL"
    ).inc()
    get_registry().counter(
        "sts3_wal_applied_records_total", "WAL records re-applied during recovery"
    ).inc(applied)
    return db


def verify_archive(path: str | Path, wal_dir: str | Path | None = None) -> dict:
    """Offline integrity report for ``sts3 verify`` / ``sts3 inspect``.

    Checks the archive's manifest and every payload checksum (v4) or
    basic readability (v1-v3), then scans the WAL for frame damage and
    replay lag (records past the archive's ``wal_seq``).  Never builds
    the database; raises :class:`~repro.exceptions.DatasetError` only
    when the file is entirely unreadable.
    """
    path = Path(path)
    wal_dir = default_wal_dir(path) if wal_dir is None else Path(wal_dir)
    if not path.exists():
        raise DatasetError(f"no database archive at {path}")
    data = path.read_bytes()
    report: dict = {"path": str(path), "payloads": [], "problems": []}
    if data[: len(DB_MAGIC)] == DB_MAGIC:
        manifest = _read_manifest(path, data)
        report["format_version"] = 4
        report["wal_seq"] = int(manifest.get("wal_seq", 0))
        entries = [
            (f"segment-{i}", e) for i, e in enumerate(manifest["segments"])
        ] + [("buffer", manifest["buffer_payload"])]
        for name, entry in entries:
            blob, problem = _payload_blob(data, entry)
            status = "ok" if problem is None else problem
            report["payloads"].append(
                {
                    "name": name,
                    "n_series": int(entry["size"]),
                    "crc32": int(entry["payload"]["crc32"]),
                    "status": status,
                }
            )
            if problem is not None:
                report["problems"].append(f"{name}: {problem}")
    else:
        try:
            with np.load(path) as archive:
                header = json.loads(bytes(archive["header"]).decode())
        except Exception as exc:
            raise DatasetError(f"{path} is not an STS3 database archive") from exc
        report["format_version"] = int(header.get("format_version", 1))
        report["wal_seq"] = int(header.get("wal_seq", 0))
        for position, entry in enumerate(header.get("segments", [])):
            report["payloads"].append(
                {
                    "name": f"segment-{position}",
                    "n_series": int(entry["size"]),
                    "crc32": None,
                    "status": "unchecksummed (pre-v4 archive)",
                }
            )
    records, wal_report = scan_wal(wal_dir)
    replay_lag = sum(1 for r in records if r["seq"] > report["wal_seq"])
    report["wal"] = {
        "directory": str(wal_dir),
        "present": wal_report.files > 0,
        "records": wal_report.records,
        "replay_lag": replay_lag,
        # checkpoint bookkeeping (sts3 inspect's sharded view renders
        # these as columns): the archive's watermark, the log's highest
        # frame, and how many journaled records a recovery would apply
        "checkpoint_seq": int(report["wal_seq"]),
        "last_seq": int(wal_report.last_seq),
        "records_since_checkpoint": replay_lag,
        "clean": wal_report.clean,
        "problems": list(wal_report.problems),
    }
    report["problems"].extend(wal_report.problems)
    return report
