"""Unit tests for the low-level synthetic-signal building blocks."""

import numpy as np
import pytest

from repro.data.generators import (
    add_noise,
    ensure_rng,
    gaussian_bump,
    harmonic_series,
    random_walk,
    random_warp,
    time_shift,
)
from repro.exceptions import ParameterError


class TestEnsureRng:
    def test_int_seed_reproducible(self):
        assert ensure_rng(3).normal() == ensure_rng(3).normal()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestGaussianBump:
    def test_peak_at_center(self):
        bump = gaussian_bump(101, center=50, width=5, height=2.0)
        assert bump.argmax() == 50
        assert bump.max() == pytest.approx(2.0)

    def test_positive_everywhere(self):
        assert (gaussian_bump(50, 10, 3) > 0).all()

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            gaussian_bump(0, 1, 1)
        with pytest.raises(ParameterError):
            gaussian_bump(10, 1, 0)


class TestHarmonicSeries:
    def test_length_and_smoothness(self):
        out = harmonic_series(200, [1.0, 0.5], [0.0, 1.0], base_period=200)
        assert len(out) == 200
        # band-limited: adjacent samples are close
        assert np.abs(np.diff(out)).max() < 0.2

    def test_zero_amplitudes_give_zeros(self):
        assert np.allclose(harmonic_series(50, [0.0], [0.0], 50), 0.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ParameterError):
            harmonic_series(50, [1.0, 2.0], [0.0], 50)

    def test_bad_period_raises(self):
        with pytest.raises(ParameterError):
            harmonic_series(50, [1.0], [0.0], 0)


class TestRandomWalk:
    def test_length(self, rng):
        assert len(random_walk(77, rng)) == 77

    def test_reproducible(self):
        a = random_walk(50, np.random.default_rng(5))
        b = random_walk(50, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestTimeShift:
    def test_positive_shift_moves_right(self):
        series = np.arange(10.0)
        out = time_shift(series, 3)
        assert np.array_equal(out[3:], series[:-3])
        assert np.array_equal(out[:3], np.full(3, series[0]))

    def test_negative_shift_moves_left(self):
        series = np.arange(10.0)
        out = time_shift(series, -2)
        assert np.array_equal(out[:-2], series[2:])
        assert np.array_equal(out[-2:], np.full(2, series[-1]))

    def test_zero_shift_copies(self):
        series = np.arange(5.0)
        out = time_shift(series, 0)
        assert np.array_equal(out, series)
        assert out is not series

    def test_preserves_length(self):
        assert len(time_shift(np.arange(9.0), 4)) == 9


class TestRandomWarp:
    def test_preserves_length_and_range(self, rng):
        series = np.sin(np.linspace(0, 6, 120))
        out = random_warp(series, rng, strength=0.05)
        assert len(out) == 120
        assert out.min() >= series.min() - 1e-9
        assert out.max() <= series.max() + 1e-9

    def test_zero_strength_is_identity(self, rng):
        series = np.sin(np.linspace(0, 6, 60))
        assert np.allclose(random_warp(series, rng, strength=0.0), series)

    def test_rejects_negative_strength(self, rng):
        with pytest.raises(ParameterError):
            random_warp(np.arange(10.0), rng, strength=-1)

    def test_rejects_2d(self, rng):
        with pytest.raises(ParameterError):
            random_warp(np.zeros((5, 2)), rng)


class TestAddNoise:
    def test_zero_noise_copies(self, rng):
        series = np.arange(5.0)
        out = add_noise(series, rng, 0.0)
        assert np.array_equal(out, series)
        assert out is not series

    def test_noise_changes_values(self, rng):
        series = np.zeros(100)
        out = add_noise(series, rng, 1.0)
        assert not np.array_equal(out, series)
        assert abs(out.std() - 1.0) < 0.3

    def test_rejects_negative_std(self, rng):
        with pytest.raises(ParameterError):
            add_noise(np.zeros(3), rng, -0.1)
