"""Loader for the UCR Time Series Classification Archive file format.

The 2015 archive (the version the paper cites) stores each dataset as
``NAME/NAME_TRAIN`` and ``NAME/NAME_TEST`` text files: one series per
line, the class label first, values separated by commas or whitespace.

This environment has no network access, so the benchmarks run on the
synthetic stand-ins from :mod:`repro.data.ucr_like`; users who have the
real archive can set ``REPRO_UCR_DIR`` to its root and rerun the
accuracy experiments on real data via :func:`load_ucr_dataset`.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..exceptions import DatasetError
from ..types import ClassificationDataset, LabeledDataset
from .normalize import z_normalize

__all__ = ["load_ucr_file", "load_ucr_dataset", "ucr_archive_dir"]

#: Environment variable pointing at a local copy of the UCR archive.
UCR_DIR_ENV = "REPRO_UCR_DIR"


def ucr_archive_dir() -> Path | None:
    """Directory of a local UCR archive, or ``None`` if not configured."""
    value = os.environ.get(UCR_DIR_ENV)
    return Path(value) if value else None


def load_ucr_file(path: str | Path, normalize: bool = True) -> LabeledDataset:
    """Parse one UCR-format file into a :class:`LabeledDataset`.

    Labels may be arbitrary integers (the archive uses e.g. -1/1 or
    1..K); they are kept as-is.  Blank lines are skipped.  Each series
    is z-normalized unless ``normalize`` is False.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"UCR file not found: {path}")
    series: list[np.ndarray] = []
    labels: list[int] = []
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            fields = line.replace(",", " ").split()
            if len(fields) < 2:
                raise DatasetError(f"{path}:{line_no}: expected label + values")
            try:
                label = int(float(fields[0]))
                values = np.asarray([float(v) for v in fields[1:]], dtype=np.float64)
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: unparsable number") from exc
            series.append(z_normalize(values) if normalize else values)
            labels.append(label)
    if not series:
        raise DatasetError(f"UCR file is empty: {path}")
    return LabeledDataset(series=series, labels=np.asarray(labels), name=path.stem)


def load_ucr_dataset(
    name: str, root: str | Path | None = None, normalize: bool = True
) -> ClassificationDataset:
    """Load a named dataset (TRAIN + TEST pair) from a UCR archive copy.

    ``root`` defaults to the ``REPRO_UCR_DIR`` environment variable.
    """
    root = Path(root) if root is not None else ucr_archive_dir()
    if root is None:
        raise DatasetError(
            f"no UCR archive available: pass root= or set ${UCR_DIR_ENV}"
        )
    base = root / name
    train = load_ucr_file(base / f"{name}_TRAIN", normalize=normalize)
    test = load_ucr_file(base / f"{name}_TEST", normalize=normalize)
    return ClassificationDataset(name=name, train=train, test=test)
