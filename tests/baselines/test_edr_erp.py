"""Tests for EDR and ERP against textbook reference dynamic programs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.edr import edr_distance, edr_similarity
from repro.baselines.erp import erp_distance
from repro.exceptions import ParameterError

series = arrays(
    np.float64,
    st.integers(min_value=0, max_value=24),
    elements=st.floats(min_value=-4, max_value=4, allow_nan=False),
)


def _reference_edr(a, b, epsilon):
    n, m = len(a), len(b)
    dp = np.zeros((n + 1, m + 1), dtype=int)
    dp[:, 0] = np.arange(n + 1)
    dp[0, :] = np.arange(m + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            sub = 0 if abs(a[i - 1] - b[j - 1]) <= epsilon else 1
            dp[i, j] = min(dp[i - 1, j - 1] + sub, dp[i - 1, j] + 1, dp[i, j - 1] + 1)
    return int(dp[n, m])


def _reference_erp(a, b, gap=0.0):
    n, m = len(a), len(b)
    dp = np.zeros((n + 1, m + 1))
    dp[:, 0] = np.concatenate(([0.0], np.cumsum(np.abs(a - gap)))) if n else 0.0
    dp[0, :] = np.concatenate(([0.0], np.cumsum(np.abs(b - gap)))) if m else 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            dp[i, j] = min(
                dp[i - 1, j - 1] + abs(a[i - 1] - b[j - 1]),
                dp[i - 1, j] + abs(a[i - 1] - gap),
                dp[i, j - 1] + abs(b[j - 1] - gap),
            )
    return float(dp[n, m])


class TestEDR:
    def test_identical_is_zero(self):
        a = np.arange(10.0)
        assert edr_distance(a, a, epsilon=0.1) == 0

    def test_completely_different(self):
        a = np.zeros(4)
        b = np.full(4, 9.0)
        assert edr_distance(a, b, epsilon=0.5) == 4

    def test_length_difference_costs_gaps(self):
        a = np.zeros(6)
        b = np.zeros(2)
        assert edr_distance(a, b, epsilon=0.1) == 4

    def test_empty(self):
        assert edr_distance(np.array([]), np.arange(3.0), 0.5) == 3
        assert edr_distance(np.array([]), np.array([]), 0.5) == 0

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ParameterError):
            edr_distance(np.zeros(2), np.zeros(2), epsilon=-1)

    def test_similarity_range(self):
        a, b = np.zeros(5), np.full(5, 9.0)
        assert edr_similarity(a, b, 0.5) == 0.0
        assert edr_similarity(a, a, 0.5) == 1.0

    @given(series, series, st.floats(0, 2))
    @settings(max_examples=40)
    def test_matches_reference(self, a, b, epsilon):
        assert edr_distance(a, b, epsilon) == _reference_edr(a, b, epsilon)

    @given(series, series, st.floats(0, 2))
    @settings(max_examples=25)
    def test_symmetry(self, a, b, epsilon):
        assert edr_distance(a, b, epsilon) == edr_distance(b, a, epsilon)

    @given(series, series)
    @settings(max_examples=25)
    def test_bounded_by_max_length(self, a, b):
        assert edr_distance(a, b, 0.5) <= max(len(a), len(b))


class TestERP:
    def test_identical_is_zero(self):
        a = np.arange(8.0)
        assert erp_distance(a, a) == pytest.approx(0.0)

    def test_empty_costs_gap_mass(self):
        b = np.array([1.0, -2.0, 3.0])
        assert erp_distance(np.array([]), b) == pytest.approx(6.0)

    def test_known_small_case(self):
        a = np.array([1.0])
        b = np.array([1.0, 2.0])
        # align 1-1 (cost 0) then gap the 2 (cost |2-0| = 2)
        assert erp_distance(a, b) == pytest.approx(2.0)

    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            erp_distance(np.zeros((3, 2)), np.zeros(3))

    @given(series, series, st.floats(-1, 1))
    @settings(max_examples=40)
    def test_matches_reference(self, a, b, gap):
        assert erp_distance(a, b, gap) == pytest.approx(
            _reference_erp(a, b, gap), abs=1e-9
        )

    @given(series, series)
    @settings(max_examples=25)
    def test_symmetry(self, a, b):
        assert erp_distance(a, b) == pytest.approx(erp_distance(b, a), abs=1e-9)

    @given(series, series, series)
    @settings(max_examples=25)
    def test_triangle_inequality(self, a, b, c):
        """ERP is a metric (Chen & Ng 2004, Theorem 2)."""
        dab = erp_distance(a, b)
        dbc = erp_distance(b, c)
        dac = erp_distance(a, c)
        assert dac <= dab + dbc + 1e-9
