"""Tests for the UCR file-format loader, using generated fixture files."""

import numpy as np
import pytest

from repro.data.loader import load_ucr_dataset, load_ucr_file, ucr_archive_dir
from repro.exceptions import DatasetError


@pytest.fixture
def ucr_root(tmp_path):
    """A miniature UCR archive with one dataset of 2 classes."""
    root = tmp_path / "archive"
    base = root / "Mini"
    base.mkdir(parents=True)
    train = "\n".join(
        [
            "1,0.0,1.0,2.0,3.0",
            "2,3.0,2.0,1.0,0.0",
            "1,0.1,1.1,2.1,3.1",
            "",  # blank lines are skipped
        ]
    )
    test = "1 0.0 1.0 2.0 3.0\n2 3.0 2.0 1.0 0.0\n"  # whitespace variant
    (base / "Mini_TRAIN").write_text(train)
    (base / "Mini_TEST").write_text(test)
    return root


class TestLoadUcrFile:
    def test_parses_labels_and_series(self, ucr_root):
        ds = load_ucr_file(ucr_root / "Mini" / "Mini_TRAIN")
        assert len(ds) == 3
        assert sorted(np.unique(ds.labels).tolist()) == [1, 2]
        assert all(len(s) == 4 for s in ds.series)

    def test_normalizes_by_default(self, ucr_root):
        ds = load_ucr_file(ucr_root / "Mini" / "Mini_TRAIN")
        assert abs(ds.series[0].mean()) < 1e-9

    def test_raw_mode(self, ucr_root):
        ds = load_ucr_file(ucr_root / "Mini" / "Mini_TRAIN", normalize=False)
        assert np.allclose(ds.series[0], [0.0, 1.0, 2.0, 3.0])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_ucr_file(tmp_path / "nope")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty"
        path.write_text("\n\n")
        with pytest.raises(DatasetError):
            load_ucr_file(path)

    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("1,hello,world\n")
        with pytest.raises(DatasetError):
            load_ucr_file(path)

    def test_label_only_line_raises(self, tmp_path):
        path = tmp_path / "short"
        path.write_text("1\n")
        with pytest.raises(DatasetError):
            load_ucr_file(path)


class TestLoadUcrDataset:
    def test_loads_pair(self, ucr_root):
        ds = load_ucr_dataset("Mini", root=ucr_root)
        assert ds.name == "Mini"
        assert len(ds.train) == 3
        assert len(ds.test) == 2

    def test_env_var_fallback(self, ucr_root, monkeypatch):
        monkeypatch.setenv("REPRO_UCR_DIR", str(ucr_root))
        assert ucr_archive_dir() == ucr_root
        ds = load_ucr_dataset("Mini")
        assert len(ds.train) == 3

    def test_no_archive_configured(self, monkeypatch):
        monkeypatch.delenv("REPRO_UCR_DIR", raising=False)
        with pytest.raises(DatasetError):
            load_ucr_dataset("Mini")
