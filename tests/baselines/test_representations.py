"""Tests for the SAX and DFT representation baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.ed import euclidean
from repro.baselines.sax import gaussian_breakpoints, sax_mindist, sax_transform
from repro.baselines.spectral import DFTFilter, dft_distance, dft_features
from repro.data.normalize import z_normalize
from repro.exceptions import ParameterError

pair = st.integers(min_value=8, max_value=64).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=st.floats(-50, 50, allow_nan=False)),
        arrays(np.float64, n, elements=st.floats(-50, 50, allow_nan=False)),
    )
)


class TestBreakpoints:
    def test_classic_alphabet_4(self):
        """The published table: a=4 → (-0.67, 0, 0.67)."""
        bp = gaussian_breakpoints(4)
        assert bp[1] == pytest.approx(0.0, abs=1e-12)
        assert bp[0] == pytest.approx(-0.6745, abs=1e-3)
        assert bp[2] == pytest.approx(0.6745, abs=1e-3)

    def test_sorted(self):
        bp = gaussian_breakpoints(10)
        assert np.all(np.diff(bp) > 0)

    def test_rejects_tiny_alphabet(self):
        with pytest.raises(ParameterError):
            gaussian_breakpoints(1)


class TestSaxTransform:
    def test_symbol_range(self):
        rng = np.random.default_rng(0)
        word = sax_transform(z_normalize(rng.normal(size=64)), 8, alphabet_size=5)
        assert word.min() >= 0
        assert word.max() <= 4
        assert len(word) == 8

    def test_monotone_series_monotone_word(self):
        word = sax_transform(z_normalize(np.arange(32.0)), 8, alphabet_size=8)
        assert np.all(np.diff(word) >= 0)

    def test_symbols_roughly_equiprobable(self):
        """At full resolution (segments == length, no PAA averaging)
        the Gaussian breakpoints make the symbols equiprobable."""
        rng = np.random.default_rng(1)
        words = [
            sax_transform(z_normalize(rng.normal(size=128)), 128, alphabet_size=4)
            for _ in range(50)
        ]
        counts = np.bincount(np.concatenate(words), minlength=4)
        # each of the 4 symbols should hold a healthy share (expected 25%)
        assert counts.min() > 0.15 * counts.sum()


class TestSaxMindist:
    @given(pair)
    @settings(max_examples=40)
    def test_lower_bounds_ed(self, ab):
        """MINDIST(SAX(a), SAX(b)) <= ED(a, b) for z-normalized input."""
        a = z_normalize(ab[0])
        b = z_normalize(ab[1])
        word_a = sax_transform(a, 8, alphabet_size=6)
        word_b = sax_transform(b, 8, alphabet_size=6)
        bound = sax_mindist(word_a, word_b, len(a), alphabet_size=6)
        assert bound <= euclidean(a, b) + 1e-9

    def test_equal_words_zero(self):
        word = np.array([0, 1, 2, 3])
        assert sax_mindist(word, word, 16, alphabet_size=4) == 0.0

    def test_adjacent_symbols_zero(self):
        a = np.array([1, 1, 1])
        b = np.array([2, 2, 2])
        assert sax_mindist(a, b, 12, alphabet_size=4) == 0.0

    def test_distant_symbols_positive(self):
        a = np.array([0, 0])
        b = np.array([3, 3])
        assert sax_mindist(a, b, 8, alphabet_size=4) > 0

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            sax_mindist(np.zeros(3, np.int64), np.zeros(4, np.int64), 10)


class TestDFT:
    @given(pair)
    @settings(max_examples=40)
    def test_truncated_features_lower_bound_ed(self, ab):
        a, b = ab
        m = max(1, len(a) // 4)
        bound = dft_distance(dft_features(a, m), dft_features(b, m))
        assert bound <= euclidean(a, b) + 1e-9

    @given(pair)
    @settings(max_examples=30)
    def test_full_spectrum_is_exact(self, ab):
        """Parseval: all n coefficients reproduce ED exactly."""
        a, b = ab
        dist = dft_distance(dft_features(a, len(a)), dft_features(b, len(b)))
        assert dist == pytest.approx(euclidean(a, b), abs=1e-7)

    def test_validation(self):
        with pytest.raises(ParameterError):
            dft_features(np.zeros(8), 0)
        with pytest.raises(ParameterError):
            dft_features(np.zeros(8), 9)
        with pytest.raises(ParameterError):
            dft_features(np.zeros((4, 2)), 2)
        with pytest.raises(ParameterError):
            dft_distance(np.zeros(3, complex), np.zeros(4, complex))


class TestDFTFilter:
    def test_exactness(self):
        rng = np.random.default_rng(2)
        database = [rng.normal(size=64) for _ in range(40)]
        filt = DFTFilter(database, n_coefficients=8)
        for _ in range(5):
            query = rng.normal(size=64)
            idx, dist = filt.nearest(query)
            brute = min((euclidean(query, s), i) for i, s in enumerate(database))
            assert idx == brute[1]
            assert dist == pytest.approx(brute[0])

    def test_prunes_on_smooth_data(self):
        t = np.linspace(0, 6, 64)
        database = [np.sin(t + phase) for phase in np.linspace(0, 3, 60)]
        filt = DFTFilter(database, n_coefficients=8)
        filt.nearest(np.sin(t + 0.03))
        assert filt.stats["pruned"] > 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            DFTFilter([])
        with pytest.raises(ParameterError):
            DFTFilter([np.zeros(8), np.zeros(9)])
        filt = DFTFilter([np.zeros(8)])
        with pytest.raises(ParameterError):
            filt.nearest(np.zeros(9))
