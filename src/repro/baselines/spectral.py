"""Spectral (DFT) features — Agrawal, Faloutsos & Swami's F-index idea.

Keeping the first ``m`` orthonormal DFT coefficients of a series gives
a low-dimensional feature vector whose Euclidean distance
**lower-bounds** the true ED of the originals (Parseval: the full
complex spectrum preserves ED exactly; truncation drops non-negative
energy terms).  This is the oldest of the representation methods the
paper's Section 8.1 surveys and completes the family alongside PAA and
SAX.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["dft_features", "dft_distance", "DFTFilter"]


def dft_features(series: np.ndarray, n_coefficients: int) -> np.ndarray:
    """First ``n_coefficients`` orthonormal DFT coefficients (complex).

    With ``n_coefficients = len(series)`` the feature distance equals
    the Euclidean distance exactly (Parseval with ``norm='ortho'``).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ParameterError("DFT features are implemented for 1-D series")
    if not 1 <= n_coefficients <= len(series):
        raise ParameterError(
            f"n_coefficients must be in [1, {len(series)}], got {n_coefficients}"
        )
    return np.fft.fft(series, norm="ortho")[:n_coefficients]


def dft_distance(features_a: np.ndarray, features_b: np.ndarray) -> float:
    """Euclidean distance in feature space — a lower bound on ED."""
    if features_a.shape != features_b.shape:
        raise ParameterError("feature vectors must share a resolution")
    diff = features_a - features_b
    return float(np.sqrt(np.sum((diff * diff.conj()).real)))


class DFTFilter:
    """Exact ED nearest-neighbour search behind a DFT lower bound.

    Identical structure to :class:`repro.baselines.paa.PAAFilter`:
    precompute database features, visit candidates in ascending-bound
    order, stop when the next bound exceeds the best exact distance.
    """

    def __init__(self, database: list[np.ndarray], n_coefficients: int = 16):
        if not database:
            raise ParameterError("cannot search an empty database")
        self.database = database
        self.length = len(database[0])
        if any(len(s) != self.length for s in database):
            raise ParameterError("DFTFilter requires equal-length series")
        self.n_coefficients = min(n_coefficients, self.length)
        self.features = np.stack(
            [dft_features(s, self.n_coefficients) for s in database]
        )
        self.stats = {"exact_computed": 0, "pruned": 0}

    def nearest(self, query: np.ndarray) -> tuple[int, float]:
        """Index and exact ED of the nearest database series."""
        if len(query) != self.length:
            raise ParameterError("query length differs from the database")
        q_features = dft_features(query, self.n_coefficients)
        diff = self.features - q_features
        bounds = np.sqrt(np.einsum("ij,ij->i", diff, diff.conj()).real)
        order = np.argsort(bounds, kind="stable")
        best_index = -1
        best_distance = np.inf
        for position, index in enumerate(order):
            if bounds[index] >= best_distance:
                self.stats["pruned"] += len(order) - position
                break
            gap = query - self.database[index]
            distance = float(np.sqrt(np.dot(gap, gap)))
            self.stats["exact_computed"] += 1
            if distance < best_distance:
                best_distance = distance
                best_index = int(index)
        return best_index, best_distance
