"""Table 3: NN-query runtime — STS3 vs ED, FTSE, FastDTW, LB_improved.

Paper Section 7.2.1.  Each method answers the same 1-NN query batch;
an early-stopping strategy is used everywhere except FastDTW ("it
cannot be stopped early").  The paper's claim to reproduce: STS3 is
faster than FTSE, FastDTW and LB_improved by orders of magnitude and
competitive with (sometimes faster than) ED.

The DTW/LCSS-family baselines are O(n·ω) per pair, so at scale the
batch would take hours — exactly the paper's point.  The number of
queries given to the slow baselines is therefore capped (reported in
the table as #q); per-query times remain directly comparable.
"""

from __future__ import annotations

import pytest

from repro.baselines import DTWCascade, knn_search, measures, sakoe_chiba_window
from repro.bench import Timer, render_table, repro_scale, scaled
from repro.core import Bound, Grid, NaiveSearcher, transform, transform_query
from repro.data.registry import paper_workload

CASES = [("CBF", 21, 0.18), ("CET", 76, 0.82), ("ED", 4, 0.88)]

#: max queries handed to each slow baseline (per dataset).
SLOW_QUERY_CAP = 3


def _per_query_ms(seconds: float, n_queries: int) -> float:
    return seconds * 1000.0 / max(n_queries, 1)


@pytest.fixture(scope="module")
def experiment(report):
    rows = []
    prepared = {}
    for name, sigma, epsilon in CASES:
        workload = paper_workload(name, scale=min(repro_scale(), 0.05), seed=0)
        grid = Grid.from_cell_sizes(Bound.of_database(workload.database), sigma, epsilon)
        sets = [transform(s, grid) for s in workload.database]
        searcher = NaiveSearcher(sets)
        queries = workload.queries
        slow_queries = queries[:SLOW_QUERY_CAP]
        window = sakoe_chiba_window(workload.length, 0.1)

        with Timer() as t_sts3:
            for q in queries:
                searcher.query(transform_query(q, grid), k=1)
        with Timer() as t_ed:
            for q in queries:
                knn_search(workload.database, q, measures.ed(), k=1)
        with Timer() as t_ftse:
            for q in slow_queries:
                knn_search(workload.database, q, measures.ftse(0.5, 0.1), k=1)
        with Timer() as t_fast:
            for q in slow_queries:
                knn_search(
                    workload.database, q, measures.fast_dtw(0), k=1, early_stop=False
                )
        cascade = DTWCascade(workload.database, window=window)
        with Timer() as t_lb:
            for q in slow_queries:
                cascade.nearest(q)

        rows.append(
            [
                name,
                len(queries),
                _per_query_ms(t_sts3.seconds, len(queries)),
                _per_query_ms(t_ed.seconds, len(queries)),
                _per_query_ms(t_ftse.seconds, len(slow_queries)),
                _per_query_ms(t_fast.seconds, len(slow_queries)),
                _per_query_ms(t_lb.seconds, len(slow_queries)),
            ]
        )
        prepared[name] = (workload, grid, sets, searcher)
    report(
        "table3_runtime",
        render_table(
            ["Dataset", "#q", "STS3", "ED", "FTSE", "FastDTW", "LB_improved"],
            rows,
            title=(
                "Table 3: per-query runtime in ms "
                f"(scale<=0.05, slow baselines capped at {SLOW_QUERY_CAP} queries)"
            ),
        ),
    )
    return prepared


@pytest.mark.parametrize("name", [c[0] for c in CASES])
def test_bench_sts3(benchmark, experiment, name):
    workload, grid, _, searcher = experiment[name]
    query = workload.queries[0]
    benchmark(lambda: searcher.query(transform_query(query, grid), k=1))


@pytest.mark.parametrize("name", [c[0] for c in CASES])
def test_bench_ed(benchmark, experiment, name):
    workload, *_ = experiment[name]
    query = workload.queries[0]
    benchmark(lambda: knn_search(workload.database, query, measures.ed(), k=1))


@pytest.mark.parametrize("name", ["CBF"])
def test_bench_lb_improved(benchmark, experiment, name):
    """One slow-family representative kept under pytest-benchmark."""
    workload, *_ = experiment[name]
    window = sakoe_chiba_window(workload.length, 0.1)
    cascade = DTWCascade(workload.database, window=window)
    query = workload.queries[0]
    benchmark.pedantic(lambda: cascade.nearest(query), rounds=3, iterations=1)
