"""The caching tier: LRU semantics, metrics, and invalidation.

Covers the DESIGN.md §13 cache contracts at three layers:

- :class:`LRUBytesCache` in isolation — byte-budgeted LRU order,
  disabled-cache behavior, pickling, counters;
- the query-result cache on :class:`STS3Database` — hits are
  bit-identical detached copies, deadline queries bypass the cache,
  and every structural change (buffered insert, sealing insert, flush,
  compact, save/load round trip) stops stale answers from being
  served via the catalog-generation key component;
- the candidate cache inside the approximate searcher.
"""

import pickle

import numpy as np
import pytest

from repro import STS3Database
from repro.core import (
    CandidateCache,
    LRUBytesCache,
    QueryResultCache,
    fingerprint,
    load_database,
    save_database,
)
from repro.obs import MetricsRegistry, get_registry, set_registry

LENGTH = 32


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def build_db(seed=9, n_series=40, cache_bytes=1 << 20):
    rng = np.random.default_rng(seed)
    base = [rng.normal(size=LENGTH) for _ in range(n_series)]
    db = STS3Database(
        base, sigma=2, epsilon=0.5, normalize=False, buffer_capacity=4,
        cache_bytes=cache_bytes,
    )
    return db, rng


def fingerprint_of(result):
    return [(n.index, n.similarity) for n in result.neighbors]


class TestLRUBytesCache:
    def test_get_put_roundtrip_and_counters(self):
        cache = LRUBytesCache(100, name="t")
        assert cache.get("a") is None
        cache.put("a", 1, 10)
        assert cache.get("a") == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = LRUBytesCache(30, name="t")
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")  # refresh a — b becomes least recent
        cache.put("d", 4, 10)
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == 1
        assert cache.get("d") == 4
        assert cache.evictions == 1

    def test_replace_same_key_does_not_leak_bytes(self):
        cache = LRUBytesCache(100, name="t")
        cache.put("a", 1, 40)
        cache.put("a", 2, 40)
        assert cache.nbytes == 40
        assert cache.get("a") == 2

    def test_oversized_entry_is_refused(self):
        cache = LRUBytesCache(10, name="t")
        cache.put("big", 1, 11)
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_zero_capacity_disables_but_still_counts_misses(self):
        cache = LRUBytesCache(0, name="t")
        cache.put("a", 1, 1)
        assert cache.get("a") is None
        assert cache.stats()["misses"] == 1
        assert cache.stats()["entries"] == 0

    def test_clear_drops_entries_keeps_counters(self):
        cache = LRUBytesCache(100, name="t")
        cache.put("a", 1, 10)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.nbytes == 0
        assert cache.stats()["hits"] == 1

    def test_metrics_labeled_by_cache_name(self, fresh_registry):
        result = QueryResultCache(100)
        candidate = CandidateCache(100)
        result.get("x")
        candidate.get("x")
        misses = fresh_registry.counter("sts3_cache_misses_total")
        assert misses.value(cache="result") == 1.0
        assert misses.value(cache="candidate") == 1.0

    def test_pickle_drops_entries_keeps_shape(self):
        cache = QueryResultCache(512)
        cache.put("a", 1, 10)
        clone = pickle.loads(pickle.dumps(cache))
        assert isinstance(clone, QueryResultCache)
        assert clone.capacity_bytes == 512
        assert clone.name == "result"
        assert len(clone) == 0  # workers start cold

    def test_fingerprint_is_stable_and_separator_safe(self):
        assert fingerprint(b"ab", b"c") == fingerprint(b"ab", b"c")
        assert fingerprint(b"ab", b"c") != fingerprint(b"a", b"bc")


class TestResultCacheOnDatabase:
    def test_hit_is_bit_identical(self, fresh_registry):
        db, rng = build_db()
        query = rng.normal(size=LENGTH)
        first = db.query(query, k=5, method="index")
        second = db.query(query, k=5, method="index")
        assert fingerprint_of(first) == fingerprint_of(second)
        hits = fresh_registry.counter("sts3_cache_hits_total")
        assert hits.value(cache="result") >= 1.0

    def test_hit_is_a_detached_copy(self):
        db, rng = build_db()
        query = rng.normal(size=LENGTH)
        first = db.query(query, k=5, method="index")
        want = fingerprint_of(first)
        first.neighbors.clear()  # caller vandalism must not poison the cache
        again = db.query(query, k=5, method="index")
        assert fingerprint_of(again) == want

    def test_different_parameters_do_not_collide(self):
        db, rng = build_db()
        query = rng.normal(size=LENGTH)
        r5 = db.query(query, k=5, method="index")
        r3 = db.query(query, k=3, method="index")
        assert len(r5.neighbors) == 5
        assert len(r3.neighbors) == 3

    def test_deadline_queries_bypass_the_cache(self, fresh_registry):
        db, rng = build_db()
        query = rng.normal(size=LENGTH)
        db.query(query, k=5, method="index", deadline_ms=10_000)
        assert len(db.result_cache) == 0  # never stored
        db.query(query, k=5, method="index")  # populates
        before = db.result_cache.hits
        db.query(query, k=5, method="index", deadline_ms=10_000)
        assert db.result_cache.hits == before  # never served either

    def test_cache_disabled_by_default(self):
        rng = np.random.default_rng(0)
        db = STS3Database([rng.normal(size=LENGTH) for _ in range(8)],
                          sigma=2, epsilon=0.5)
        assert db.result_cache is None
        query = rng.normal(size=LENGTH)
        assert fingerprint_of(db.query(query, k=3)) == \
            fingerprint_of(db.query(query, k=3))

    def test_batch_path_uses_and_fills_the_cache(self, fresh_registry):
        db, rng = build_db()
        queries = [rng.normal(size=LENGTH) for _ in range(4)]
        cold = db.query_batch(queries, k=5, method="index")
        warm = db.query_batch(queries, k=5, method="index")
        assert [fingerprint_of(r) for r in cold] == \
            [fingerprint_of(r) for r in warm]
        hits = fresh_registry.counter("sts3_cache_hits_total")
        assert hits.value(cache="result") >= 4.0

    def test_scalar_and_batch_share_cache_keys(self):
        db, rng = build_db()
        query = rng.normal(size=LENGTH)
        db.query(query, k=5, method="index")
        before = db.result_cache.hits
        db.query_batch([query], k=5, method="index")
        assert db.result_cache.hits == before + 1


class TestGenerationInvalidation:
    """Every structural change makes cached answers unaddressable."""

    def check_never_stale(self, db, rng, mutate):
        """Query, mutate, and require the answer to match a cache-free run."""
        query = rng.normal(size=LENGTH)
        db.query(query, k=5, method="index")  # populate the cache
        generation = db.catalog.generation
        mutate(db)
        assert db.catalog.generation > generation
        after = db.query(query, k=5, method="index")
        cache = db.result_cache
        db.result_cache = None
        truth = db.query(query, k=5, method="index")
        db.result_cache = cache
        assert fingerprint_of(after) == fingerprint_of(truth)

    def test_buffered_insert_bumps_generation(self):
        db, rng = build_db()
        spiked = rng.normal(size=LENGTH)
        spiked[0] = 99.0  # out of bound => buffered, no seal
        self.check_never_stale(db, rng, lambda d: d.insert(spiked))
        assert len(db.buffer) > 0  # really took the buffered path

    def test_sealing_inserts_bump_generation(self):
        db, rng = build_db()

        def seal(d):
            for _ in range(d.buffer.capacity):
                series = rng.normal(size=LENGTH)
                series[0] = 120.0
                d.insert(series)

        segments = len(db.catalog.segments)
        self.check_never_stale(db, rng, seal)
        assert len(db.catalog.segments) > segments

    def test_flush_bumps_generation(self):
        db, rng = build_db()
        spiked = rng.normal(size=LENGTH)
        spiked[0] = 99.0
        db.insert(spiked)

        self.check_never_stale(db, rng, lambda d: d.flush())

    def test_compact_bumps_generation(self):
        db, rng = build_db()
        for _ in range(db.buffer.capacity):  # seal one extra segment
            series = rng.normal(size=LENGTH)
            series[0] = 120.0
            db.insert(series)
        self.check_never_stale(db, rng, lambda d: d.compact())

    def test_loaded_database_starts_cold(self, tmp_path):
        db, rng = build_db()
        query = rng.normal(size=LENGTH)
        want = fingerprint_of(db.query(query, k=5, method="index"))
        archive = tmp_path / "db.sts3"
        save_database(db, archive)
        loaded = load_database(archive, cache_bytes=1 << 20)
        assert len(loaded.result_cache) == 0
        assert fingerprint_of(loaded.query(query, k=5, method="index")) == want


class TestCandidateCache:
    def test_repeat_approximate_queries_hit(self, fresh_registry):
        db, rng = build_db(cache_bytes=0)
        query = rng.normal(size=LENGTH)
        first = db.query(query, k=5, method="approximate")
        second = db.query(query, k=5, method="approximate")
        assert fingerprint_of(first) == fingerprint_of(second)
        hits = fresh_registry.counter("sts3_cache_hits_total")
        assert hits.value(cache="candidate") >= 1.0
