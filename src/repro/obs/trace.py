"""Lightweight span tracer for the query path.

A *span* is a named interval measured on the monotonic clock
(``time.perf_counter_ns``), optionally annotated with attributes, and
nested under whatever span was open on the same thread when it started.
Spans are created with a context manager::

    from repro.obs import span

    with span("query", method="index"):
        with span("filter"):
            ...

Instrumented code always calls :func:`span`; what it costs depends on
the *active tracer*:

- The default :data:`NOOP` tracer returns a shared do-nothing context
  manager — no allocation, no clock read, no lock.  This is the mode
  production hot paths run in unless a caller opts in, and the
  benchmark guard (``benchmarks/bench_batch_engine.py``) confirms it
  stays under 2% of query time.
- A real :class:`Tracer` records every finished span into a
  thread-safe list; :meth:`Tracer.finished`, :meth:`Tracer.to_dicts`,
  :meth:`Tracer.stage_seconds`, and :meth:`Tracer.format_tree` expose
  the collected trace.

Nesting is tracked per thread (each thread has its own open-span
stack), so concurrent queries interleave without corrupting each
other's parentage.  Forked worker processes (``query_batch`` with
``workers=N``) inherit the active tracer copy-on-write: spans recorded
*inside* a worker die with the worker process, while the parent's own
spans — including the ``query_batch`` root that was open across the
fork — close normally.  Orphaned parent ids are tolerated everywhere
(such spans are treated as roots when a tree is built).

The module is intentionally zero-dependency (stdlib only) so every
layer of the system can import it without cycles.
"""

from __future__ import annotations

import itertools
import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "span",
]

_ids = itertools.count(1)


class Span:
    """One finished (or still open) named interval.

    ``duration_ns`` is ``None`` while the span is open; ``error`` holds
    the exception class name when the span body raised (the span still
    closes — exceptions propagate but are never swallowed).
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "thread_id",
        "start_ns",
        "end_ns",
        "error",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, parent_id: int | None, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_ids)
        self.parent_id = parent_id
        self.thread_id = threading.get_ident()
        self.start_ns = 0
        self.end_ns: int | None = None
        self.error: str | None = None
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._pop(self)
        return False  # never swallow the exception

    def set(self, **attrs) -> "Span":
        """Attach attributes to an open span (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int | None:
        """Elapsed nanoseconds, or ``None`` while the span is open."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is open)."""
        ns = self.duration_ns
        return 0.0 if ns is None else ns / 1e9

    def to_dict(self) -> dict:
        """JSON-ready flat representation (children are not embedded)."""
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms)"


class _NoopSpan:
    """Shared do-nothing span: the entire cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Tracer that records nothing; the default on every hot path."""

    enabled = False

    def span(self, name: str, **attrs) -> _NoopSpan:
        """Return the shared no-op span (ignores all arguments)."""
        return _NOOP_SPAN

    def finished(self) -> list[Span]:
        """No spans, ever."""
        return []

    def reset(self) -> None:
        """Nothing to clear."""


NOOP = NoopTracer()


class Tracer:
    """Collects finished spans; safe for concurrent threads.

    Each thread nests spans on its own stack; finished spans land in
    one shared list guarded by a lock (appends are rare relative to
    span bodies, so contention is negligible).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()

    # -- recording -------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A new span nested under the thread's innermost open span."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        return Span(self, name, parent_id, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_obj: Span) -> None:
        self._stack().append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        stack = self._stack()
        # A forked child inherits the parent's stack; only pop what we
        # pushed (the span is normally on top, but be defensive).
        if stack and stack[-1] is span_obj:
            stack.pop()
        elif span_obj in stack:  # pragma: no cover - defensive
            stack.remove(span_obj)
        with self._lock:
            self._finished.append(span_obj)

    # -- inspection ------------------------------------------------------

    def finished(self) -> list[Span]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        """Drop every collected span (open spans keep nesting intact)."""
        with self._lock:
            self._finished.clear()

    def stage_seconds(self) -> dict[str, float]:
        """Total seconds per span name, sorted by name.

        Nested spans each contribute to their own name, so sum only
        sibling stages (e.g. ``filter`` + ``refine`` + ``select_topk``)
        when comparing against a parent's wall-clock.
        """
        totals: dict[str, float] = {}
        for span_obj in self.finished():
            totals[span_obj.name] = totals.get(span_obj.name, 0.0) + span_obj.duration_s
        return dict(sorted(totals.items()))

    def stage_counts(self) -> dict[str, int]:
        """Number of finished spans per span name, sorted by name."""
        counts: dict[str, int] = {}
        for span_obj in self.finished():
            counts[span_obj.name] = counts.get(span_obj.name, 0) + 1
        return dict(sorted(counts.items()))

    def total_seconds(self, name: str) -> float:
        """Total seconds across finished spans named ``name``."""
        return self.stage_seconds().get(name, 0.0)

    def to_dicts(self) -> list[dict]:
        """The trace as a nested forest of JSON-ready dicts.

        Children are sorted by start time and embedded under a
        ``children`` key; spans whose parent never finished (e.g. it
        lived in a forked worker, or is still open) become roots.
        """
        spans = sorted(self.finished(), key=lambda s: (s.start_ns, s.span_id))
        nodes = {s.span_id: {**s.to_dict(), "children": []} for s in spans}
        roots: list[dict] = []
        for span_obj in spans:
            node = nodes[span_obj.span_id]
            parent = nodes.get(span_obj.parent_id)
            (parent["children"] if parent else roots).append(node)
        return roots

    def format_tree(self, max_spans: int = 200) -> str:
        """Human-readable indented trace (for ``sts3 query --trace``)."""
        lines: list[str] = []

        def walk(node: dict, depth: int) -> None:
            if len(lines) >= max_spans:
                return
            ns = node["duration_ns"]
            duration = "   open   " if ns is None else f"{ns / 1e6:9.3f}ms"
            attrs = node.get("attrs") or {}
            suffix = "".join(f" {k}={v}" for k, v in attrs.items())
            if node.get("error"):
                suffix += f" !{node['error']}"
            lines.append(f"{duration}  {'  ' * depth}{node['name']}{suffix}")
            for child in node["children"]:
                walk(child, depth + 1)

        for root in self.to_dicts():
            walk(root, 0)
        total = len(self.finished())
        if total > max_spans:
            lines.append(f"... ({total - max_spans} more spans)")
        return "\n".join(lines)


#: The process-wide active tracer consulted by :func:`span`.
_active: Tracer | NoopTracer = NOOP


def get_tracer() -> Tracer | NoopTracer:
    """The currently active tracer (:data:`NOOP` unless one was set)."""
    return _active


def set_tracer(tracer: Tracer | NoopTracer) -> Tracer | NoopTracer:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _active
    previous = _active
    _active = tracer
    return previous


class use_tracer:
    """Context manager installing a tracer for the duration of a block.

    ::

        tracer = Tracer()
        with use_tracer(tracer):
            db.query(q, k=5)
        print(tracer.format_tree())
    """

    def __init__(self, tracer: Tracer | NoopTracer):
        self.tracer = tracer
        self._previous: Tracer | NoopTracer | None = None

    def __enter__(self) -> Tracer | NoopTracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(self._previous)
        return False


def span(name: str, **attrs):
    """A span on the active tracer (no-op unless tracing is enabled)."""
    return _active.span(name, **attrs)
